// poptrie/lookup_pipelined.ipp — the lane-interleaved batch lookup walk,
// shared by the live trie and the snapshot engine (DESIGN.md §12).
//
// A single Poptrie lookup is a chain of dependent loads: on tables larger
// than the cache every trie level is a miss that must retire before the next
// level's address even exists. A forwarding loop, however, always has a
// burst of destinations in hand, and the misses of *independent* lookups can
// overlap. This file is that overlap, written once: a software-pipelined
// state machine that resolves the direct-pointing step for every lane up
// front, then round-robins the lanes — issuing a prefetch for lane i's next
// node while advancing lane i+1 — and retires lanes out of order as they hit
// leaves.
//
// The walk is a template over a *view* policy so the two consumers cannot
// drift (the bug this file fixes — poptrie.hpp and snapshot.hpp used to
// carry near-identical hand-maintained copies):
//
//   * AtomicView — the live trie under §3.5 concurrent churn: acquire loads
//     on the published indices (direct slot, root, base0/base1), relaxed
//     loads on the fields reached through them. Used by Poptrie::lookup_batch,
//     whose caller holds the shared EBR capability for the burst.
//   * PlainView  — an immutable structure (SnapshotFib image, or a live trie
//     served read-only by the pipelined engine): plain loads, nothing to
//     race. This is also the view the SIMD lane kernels (poptrie/lanes.hpp)
//     gather from — vector gathers are plain loads with no ordering, which
//     is exactly why the SIMD paths are only reachable through this view.
//
// Both views capture raw pointers to the pool storage for the duration of a
// burst. That hoist is sound under the same contract as the walk itself:
// pool *storage* never moves while a reader is inside its critical section
// (EBR for the live trie, immutability for images).
#pragma once

#include <cstddef>
#include <cstdint>

#include "netbase/bits.hpp"
#include "poptrie/config.hpp"
#include "rib/route.hpp"
#include "sync/annotations.hpp"
#include "sync/atomic_utils.hpp"

namespace poptrie::batch {

/// The direct-pointing MSB flag, restated here so the walk does not depend
/// on the Poptrie class template (poptrie.hpp static_asserts they agree).
inline constexpr std::uint32_t kDirectLeafBitValue = 0x8000'0000u;

/// The dict-coded leaf-run flag (config.hpp): a leaf index with this MSB set
/// reads the 8-bit code array through the dictionary instead of the 16-bit
/// leaf pool. Views built over structures that never compacted with
/// Config::leaf_dict carry null leaves8/leaf_dict pointers and never see a
/// tagged index.
inline constexpr std::uint32_t kLeaf8BitValue = poptrie::kLeaf8Bit;

/// 6-bit chunk of `key` at bit offset `off`, zero-padded past the address
/// width — the same convention as the builder, so padded slots agree.
template <class ValueType>
POPTRIE_HOT [[nodiscard]] inline std::uint64_t chunk(ValueType key, unsigned off) noexcept
{
    constexpr unsigned kWidth = netbase::bit_width_of<ValueType>;
    if (off >= kWidth) return 0;
    // shift-ok: off < kWidth guards the left shift; the right count is the
    // constant kWidth - kStrideBits.
    return static_cast<std::uint64_t>(static_cast<ValueType>(key << off) >>
                                      (kWidth - kStrideBits));
}

/// Plain-load view over an immutable (or contractually quiescent) structure.
/// The layout fields mirror SnapshotFib's members; Poptrie::batch_view()
/// materializes one for the read-only pipelined engine.
template <class ValueType, class NodeT>
struct PlainView {
    using value_type = ValueType;
    using Node = NodeT;

    const NodeT* nodes = nullptr;
    const rib::NextHop* leaves = nullptr;
    const std::uint32_t* direct = nullptr;
    std::uint32_t root = 0;
    unsigned direct_bits = 0;
    bool leaf_compression = true;
    // Appended (aggregate-init sites predating leaf_dict still compile):
    // dict-coded leaf storage, null when the structure carries none.
    const std::uint8_t* leaves8 = nullptr;
    const rib::NextHop* leaf_dict = nullptr;

    POPTRIE_HOT [[nodiscard]] std::uint32_t direct_slot(std::size_t slot) const noexcept
    {
        // index-ok: callers extract() `slot` from the key (direct_bits wide);
        // the owner sized the section to exactly 2^direct_bits slots.
        return direct[slot];
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t root_index() const noexcept { return root; }
    POPTRIE_HOT [[nodiscard]] std::uint64_t node_vector(std::uint32_t i) const noexcept
    {
        return nodes[i].vector;
    }
    POPTRIE_HOT [[nodiscard]] std::uint64_t node_leafvec(std::uint32_t i) const noexcept
    {
        return nodes[i].leafvec;
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t node_base0(std::uint32_t i) const noexcept
    {
        return nodes[i].base0;
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t node_base1(std::uint32_t i) const noexcept
    {
        return nodes[i].base1;
    }
    POPTRIE_HOT [[nodiscard]] rib::NextHop leaf(std::uint32_t i) const noexcept
    {
        if (i & kLeaf8BitValue) return leaf_dict[leaves8[i & ~kLeaf8BitValue]];
        return leaves[i];
    }
    POPTRIE_HOT void prefetch_node(std::uint32_t i) const noexcept
    {
        __builtin_prefetch(&nodes[i]);
    }
    POPTRIE_HOT void prefetch_direct(std::size_t slot) const noexcept
    {
        __builtin_prefetch(&direct[slot]);
    }
};

/// Acquire/relaxed view over the live trie under §3.5 churn. The published
/// indices (direct slots, root, base0/base1) pair with the updater's release
/// stores; the fields reached *through* an acquired index are relaxed (the
/// data dependency orders them; see sync/atomic_utils.hpp).
template <class ValueType, class NodeT>
struct AtomicView {
    using value_type = ValueType;
    using Node = NodeT;

    const NodeT* nodes = nullptr;
    const rib::NextHop* leaves = nullptr;
    const std::uint32_t* direct = nullptr;
    const std::uint32_t* root = nullptr;
    // Dict-coded leaf storage; immutable between (quiescent) compactions, so
    // relaxed loads through the acquired base0 suffice (see poptrie.hpp).
    const std::uint8_t* leaves8 = nullptr;
    const rib::NextHop* leaf_dict = nullptr;

    POPTRIE_HOT [[nodiscard]] std::uint32_t direct_slot(std::size_t slot) const noexcept
    {
        // index-ok: callers extract() `slot` from the key (direct_bits wide);
        // the builder sized the pool to exactly 2^direct_bits slots.
        return psync::load_acquire(direct[slot]);
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t root_index() const noexcept
    {
        return psync::load_acquire(*root);
    }
    POPTRIE_HOT [[nodiscard]] std::uint64_t node_vector(std::uint32_t i) const noexcept
    {
        return psync::load_relaxed(nodes[i].vector);
    }
    POPTRIE_HOT [[nodiscard]] std::uint64_t node_leafvec(std::uint32_t i) const noexcept
    {
        return psync::load_relaxed(nodes[i].leafvec);
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t node_base0(std::uint32_t i) const noexcept
    {
        return psync::load_acquire(nodes[i].base0);
    }
    POPTRIE_HOT [[nodiscard]] std::uint32_t node_base1(std::uint32_t i) const noexcept
    {
        return psync::load_acquire(nodes[i].base1);
    }
    POPTRIE_HOT [[nodiscard]] rib::NextHop leaf(std::uint32_t i) const noexcept
    {
        if (i & kLeaf8BitValue) {
            const std::uint8_t code = psync::load_relaxed(leaves8[i & ~kLeaf8BitValue]);
            return psync::load_relaxed(leaf_dict[code]);
        }
        return psync::load_relaxed(leaves[i]);
    }
    POPTRIE_HOT void prefetch_node(std::uint32_t i) const noexcept
    {
        __builtin_prefetch(&nodes[i]);
    }
    POPTRIE_HOT void prefetch_direct(std::size_t slot) const noexcept
    {
        __builtin_prefetch(&direct[slot]);
    }
};

/// One lookup over a view (Algorithms 1–3 fused) — the scalar reference the
/// pipelined tail and the forced-scalar lane path share.
template <bool UseLeafvec, class View>
POPTRIE_HOT [[nodiscard]] inline rib::NextHop lookup_one(const View& view,
                                                         typename View::value_type key,
                                                         unsigned direct_bits) noexcept
{
    std::uint32_t index;
    unsigned offset;
    if (direct_bits != 0) {  // Algorithm 3: direct pointing
        const auto slot = static_cast<std::size_t>(netbase::extract(key, 0, direct_bits));
        const std::uint32_t dindex = view.direct_slot(slot);
        if (dindex & kDirectLeafBitValue)
            return static_cast<rib::NextHop>(dindex & ~kDirectLeafBitValue);
        index = dindex;
        offset = direct_bits;
    } else {
        index = view.root_index();
        offset = 0;
    }
    std::uint64_t v = chunk(key, offset);
    std::uint64_t vector = view.node_vector(index);
    while (vector & (std::uint64_t{1} << v)) {  // Algorithm 1 main loop
        const std::uint32_t base = view.node_base1(index);
        const auto bc = static_cast<std::uint32_t>(netbase::popcount64(
            vector & netbase::low_mask_inclusive(static_cast<unsigned>(v))));
        index = base + bc - 1;
        vector = view.node_vector(index);
        offset += kStrideBits;
        v = chunk(key, offset);
    }
    const std::uint32_t base = view.node_base0(index);
    const std::uint64_t lv =
        UseLeafvec ? view.node_leafvec(index) : ~vector;  // Algorithm 1 line 14
    const auto bc = static_cast<std::uint32_t>(
        netbase::popcount64(lv & netbase::low_mask_inclusive(static_cast<unsigned>(v))));
    return view.leaf(base + bc - 1);
}

/// The interleaved state machine: `Lanes` lookups in lockstep with software
/// prefetch one trie level ahead. Retirement is out of order — a lane that
/// hits its leaf (or resolves at the direct step) drops out while deeper
/// lanes keep walking — so a burst costs max(depth) misses, not sum(depth).
///
/// Bursty traffic (the paper's §4.2 repeated pattern; per-flow packet trains
/// in real traces) additionally hands the engine *runs* of equal
/// destinations inside one burst. Those are coalesced up front: only the
/// first key of each run walks, and its next hop fans out to the rest after
/// the burst retires. On run-free traffic the cost is one predictable
/// compare per lane.
template <bool UseLeafvec, unsigned Lanes, class View>
POPTRIE_HOT inline void lookup_batch_pipelined(const View& view,
                                               const typename View::value_type* keys,
                                               rib::NextHop* out, std::size_t n,
                                               unsigned direct_bits) noexcept
{
    using value_type = typename View::value_type;
    static_assert(Lanes >= 2 && Lanes <= 32);
    std::size_t i = 0;
    for (; i + Lanes <= n; i += Lanes) {
        std::uint32_t index[Lanes];
        unsigned offset[Lanes];
        // Compacted list of still-walking lane numbers: each round touches
        // only live lanes (no done-flag scan), and a retired lane simply is
        // not copied forward — that *is* the out-of-order retirement.
        unsigned char active[Lanes];
        unsigned n_active = 0;
        // Identical-destination run coalescing: bit l marks a lane whose key
        // equals its left neighbour's. Marked lanes never enter the walk;
        // they are filled forward from the run head once the burst retires.
        std::uint32_t dup_mask = 0;
        for (unsigned l = 1; l < Lanes; ++l)
            if (keys[i + l] == keys[i + l - 1])
                // shift-ok: l < Lanes <= 32 (static_assert above).
                dup_mask |= std::uint32_t{1} << l;
        if (direct_bits != 0) {
            // Two passes over the burst so the direct-slot loads of all
            // lanes are in flight together before the first one is consumed,
            // plus a one-burst lookahead: the *next* burst's slots start
            // their miss now and resolve while this burst walks.
            std::size_t slot[Lanes];
            for (unsigned l = 0; l < Lanes; ++l) {
                // Extracted unconditionally (two ALU ops) so GCC sees every
                // slot[] element written; only the prefetch minds dup_mask.
                slot[l] = static_cast<std::size_t>(
                    netbase::extract(keys[i + l], 0, direct_bits));
                // shift-ok: l < Lanes <= 32 (static_assert above).
                if ((dup_mask & (std::uint32_t{1} << l)) == 0)
                    view.prefetch_direct(slot[l]);
            }
            if (i + 2 * Lanes <= n)
                for (unsigned l = 0; l < Lanes; ++l)
                    view.prefetch_direct(static_cast<std::size_t>(
                        netbase::extract(keys[i + Lanes + l], 0, direct_bits)));
            for (unsigned l = 0; l < Lanes; ++l) {
                // shift-ok: l < Lanes <= 32 (static_assert above).
                if (dup_mask & (std::uint32_t{1} << l)) continue;
                const std::uint32_t dindex = view.direct_slot(slot[l]);
                if (dindex & kDirectLeafBitValue) {
                    out[i + l] = static_cast<rib::NextHop>(dindex & ~kDirectLeafBitValue);
                    continue;
                }
                index[l] = dindex;
                offset[l] = direct_bits;
                active[n_active++] = static_cast<unsigned char>(l);
                view.prefetch_node(dindex);
            }
        } else {
            const std::uint32_t root = view.root_index();
            view.prefetch_node(root);
            for (unsigned l = 0; l < Lanes; ++l) {
                // shift-ok: l < Lanes <= 32 (static_assert above).
                if (dup_mask & (std::uint32_t{1} << l)) continue;
                index[l] = root;
                offset[l] = 0;
                active[n_active++] = static_cast<unsigned char>(l);
            }
        }
        while (n_active != 0) {
            unsigned still = 0;
            for (unsigned t = 0; t < n_active; ++t) {
                const unsigned l = active[t];
                const value_type key = keys[i + l];
                const std::uint64_t v = chunk(key, offset[l]);
                const std::uint64_t vector = view.node_vector(index[l]);
                if (vector & (std::uint64_t{1} << v)) {
                    const std::uint32_t base = view.node_base1(index[l]);
                    const auto bc = static_cast<std::uint32_t>(netbase::popcount64(
                        vector & netbase::low_mask_inclusive(static_cast<unsigned>(v))));
                    index[l] = base + bc - 1;
                    offset[l] += kStrideBits;
                    view.prefetch_node(index[l]);
                    active[still++] = static_cast<unsigned char>(l);
                    continue;
                }
                const std::uint32_t base = view.node_base0(index[l]);
                const std::uint64_t lv =
                    UseLeafvec ? view.node_leafvec(index[l]) : ~vector;
                const auto bc = static_cast<std::uint32_t>(netbase::popcount64(
                    lv & netbase::low_mask_inclusive(static_cast<unsigned>(v))));
                out[i + l] = view.leaf(base + bc - 1);
            }
            n_active = still;
        }
        // Fan run heads out to their coalesced followers. Left-to-right so a
        // chain of equal keys propagates from its single walked head.
        if (dup_mask != 0)
            for (unsigned l = 1; l < Lanes; ++l)
                // shift-ok: l < Lanes <= 32 (static_assert above).
                if (dup_mask & (std::uint32_t{1} << l)) out[i + l] = out[i + l - 1];
    }
    // Tail: same hoisted dispatch as the lane loop. Pointer iteration rather
    // than out[i]: under a plain-load view GCC fully unrolls this at -O3 and
    // -Waggressive-loop-optimizations then flags the (unreachable) index
    // overflow.
    const value_type* k = keys + i;
    rib::NextHop* o = out + i;
    for (std::size_t r = n - i; r != 0; --r)
        *o++ = lookup_one<UseLeafvec>(view, *k++, direct_bits);
}

}  // namespace poptrie::batch
