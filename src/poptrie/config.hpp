// poptrie/config.hpp — build-time options and observable statistics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "alloc/arena.hpp"
#include "rib/route.hpp"

namespace poptrie {

/// Options controlling how a Poptrie is compiled. The defaults correspond to
/// the paper's best configuration ("Poptrie18": leafvec + route aggregation +
/// direct pointing with s = 18).
struct Config {
    /// §3.4 direct pointing parameter `s`: the most significant s bits index
    /// a 2^s top-level array. 0 disables direct pointing ("Poptrie0").
    unsigned direct_bits = 18;

    /// §3.3 leaf compression with the `leafvec` bit vector. When false the
    /// structure is the paper's "basic" Poptrie: one leaf slot per zero bit
    /// of `vector`, and lookup counts zeros in `vector` instead.
    bool leaf_compression = true;

    /// §3 route aggregation: compress the RIB's route set (identical-next-hop
    /// subtree merging + redundant-route removal) before building the FIB.
    bool route_aggregation = true;

    /// Dictionary-coded leaf storage (an extension beyond the paper, in the
    /// spirit of Rétvári et al.'s entropy bounds): real tables use far fewer
    /// distinct next hops than the 16-bit leaf model can express, so at
    /// compact()/snapshot time — never on the update path — the reachable
    /// leaf runs are re-encoded as 8-bit codes into a dense side array plus a
    /// <= 256-entry dictionary. A re-encoded run is addressed by
    /// kLeaf8Bit | offset, so the hot path stays a popcount-indexed load with
    /// one predictable tag test. Tables with > 256 distinct next hops fall
    /// back to the plain 16-bit layout at compact time (lookup results are
    /// identical either way). Post-compaction incremental updates allocate
    /// plain 16-bit runs; the next compact() re-encodes them.
    bool leaf_dict = false;

    /// Initial pool capacity in nodes/leaves is the built size times
    /// 2^pool_headroom_log2, so incremental updates rarely need to grow the
    /// pools (growing is not safe under concurrent lookups; see Poptrie docs).
    unsigned pool_headroom_log2 = 1;

    /// Page backing for the node/leaf/direct arrays (alloc/arena.hpp):
    /// kAuto advises THP, kOn demands MAP_HUGETLB (with graceful fallback),
    /// kOff measures on plain pages. The backing actually obtained is
    /// reported by Poptrie::memory_report().
    alloc::HugepagePolicy hugepages = alloc::HugepagePolicy::kAuto;
};

// --- compile-time invariants of the structure's layout ---------------------
//
// The node layout (64-bit vector/leafvec), the 2-byte leaf model of §3.3, and
// the direct-pointing slot packing of §3.4 are all stated as static_asserts
// here so a drive-by change to a type or constant fails at compile time with
// the paper reference in hand, not at lookup time. tools/astcheck's HP2 rule
// accepts `// shift-ok:` justifications that cite valid_config() below.

/// Bits consumed per trie level (k in the paper). Poptrie::kStride mirrors
/// this; a static_assert there keeps the two in lock step.
inline constexpr unsigned kStrideBits = 6;

/// Upper bound valid_config() puts on Config::direct_bits. The direct array
/// stores `kDirectLeafBit | value` in uint32 slots, so internal-node indices
/// must stay below 2^31; capping s at 30 also caps the array itself at 2^30
/// slots (4 GiB), far above the paper's s = 18 sweet spot.
inline constexpr unsigned kMaxDirectBits = 30;

/// Upper bound valid_config() puts on Config::pool_headroom_log2. Headroom
/// multiplies the built pool size by 2^log2; 16 (65536x) is already absurd,
/// and the cap keeps every `size << pool_headroom_log2` on a 64-bit operand
/// trivially in range.
inline constexpr unsigned kMaxPoolHeadroomLog2 = 16;

/// Leaf-index tag for Config::leaf_dict: a Node::base0 with this MSB set
/// addresses a dictionary-coded 8-bit run at `base0 & ~kLeaf8Bit` in the
/// dense code array instead of a 16-bit run in the leaf pool. Shares the
/// "bit 31 is a tag, payload stays below it" convention with kDirectLeafBit
/// (the two live in disjoint index spaces: direct slots vs leaf indices).
/// The buddy allocator's kMaxCapacity of 2^31 slots is what keeps every
/// tagged index unambiguous.
inline constexpr std::uint32_t kLeaf8Bit = 0x8000'0000u;

static_assert((std::uint64_t{1} << kStrideBits) == 64,
              "Node::vector/leafvec are std::uint64_t with one bit per child: "
              "the stride must be exactly 64-ary (k = 6, §3.1)");
static_assert(std::is_same_v<rib::NextHop, std::uint16_t>,
              "the paper's 2-byte leaf model (§3.3, Table 2) and the direct-slot "
              "packing kDirectLeafBit | next_hop assume 16-bit next hops");
static_assert(kMaxDirectBits < 31,
              "direct slots are uint32 with the MSB reserved as kDirectLeafBit; "
              "2^direct_bits slot indices must stay below bit 31");
static_assert(kMaxPoolHeadroomLog2 < 32,
              "pool sizes are 32-bit buddy-allocator capacities; larger headroom "
              "shifts could not produce a representable target");

/// Validity of a Config for an address of `width` bits. Both Poptrie
/// constructors assert this (via build_from) before touching the RIB, so
/// everything downstream — the builder, the incremental updater, the
/// compactor — may rely on these bounds:
///   * direct_bits == 0 (direct pointing off) or 1 <= direct_bits < width,
///     and direct_bits <= kMaxDirectBits (< 64, so `1 << direct_bits` on a
///     64-bit operand is well defined);
///   * pool_headroom_log2 <= kMaxPoolHeadroomLog2 (< 64, likewise).
[[nodiscard]] constexpr bool valid_config(const Config& cfg, unsigned width) noexcept
{
    const bool direct_ok =
        cfg.direct_bits == 0 || (cfg.direct_bits < width && cfg.direct_bits <= kMaxDirectBits);
    return direct_ok && cfg.pool_headroom_log2 <= kMaxPoolHeadroomLog2;
}

/// Size and shape statistics, matching the columns of Table 2.
struct Stats {
    std::size_t internal_nodes = 0;  ///< "# of inodes"
    std::size_t leaves = 0;          ///< "# of leaves"
    std::size_t direct_slots = 0;    ///< 2^s (0 when direct pointing is off)

    /// Leaf slots currently served from the dictionary-coded 8-bit array
    /// (Config::leaf_dict; populated by compact()), and the dictionary's
    /// entry count. leaves - leaf8_slots is the plain 16-bit remainder.
    std::size_t leaf8_slots = 0;
    std::size_t leaf_dict_entries = 0;

    /// Paper-style analytic footprint: inodes x (24 or 16 in basic mode)
    /// + 16-bit leaves x 2 + dict-coded leaves x 1 + dict entries x 2
    /// + direct slots x 4 bytes.
    std::size_t memory_bytes = 0;

    /// Actual bytes reserved by the node/leaf pools and the direct array
    /// (includes buddy-allocator headroom).
    std::size_t allocated_bytes = 0;

    /// Buddy-allocator slots currently handed out (power-of-two rounded).
    /// After withdrawing every route and draining reclamation these return
    /// to the empty-table baseline — the tests use them as a leak check.
    std::size_t node_pool_used = 0;
    std::size_t leaf_pool_used = 0;

    /// Fragmentation signals (per pool): how many blocks sit on the buddy
    /// free lists, the largest run still allocatable, and the high-water
    /// mark (one past the highest slot ever handed out). A fresh or
    /// freshly-compacted pool has few free blocks and a high-water close to
    /// the live size; a long churn feed scatters both.
    std::size_t node_free_blocks = 0;
    std::size_t leaf_free_blocks = 0;
    std::size_t node_largest_free_run = 0;
    std::size_t leaf_largest_free_run = 0;
    std::size_t node_high_water = 0;
    std::size_t leaf_high_water = 0;
};

}  // namespace poptrie
