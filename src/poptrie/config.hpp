// poptrie/config.hpp — build-time options and observable statistics.
#pragma once

#include <cstddef>
#include <cstdint>

#include "alloc/arena.hpp"

namespace poptrie {

/// Options controlling how a Poptrie is compiled. The defaults correspond to
/// the paper's best configuration ("Poptrie18": leafvec + route aggregation +
/// direct pointing with s = 18).
struct Config {
    /// §3.4 direct pointing parameter `s`: the most significant s bits index
    /// a 2^s top-level array. 0 disables direct pointing ("Poptrie0").
    unsigned direct_bits = 18;

    /// §3.3 leaf compression with the `leafvec` bit vector. When false the
    /// structure is the paper's "basic" Poptrie: one leaf slot per zero bit
    /// of `vector`, and lookup counts zeros in `vector` instead.
    bool leaf_compression = true;

    /// §3 route aggregation: compress the RIB's route set (identical-next-hop
    /// subtree merging + redundant-route removal) before building the FIB.
    bool route_aggregation = true;

    /// Initial pool capacity in nodes/leaves is the built size times
    /// 2^pool_headroom_log2, so incremental updates rarely need to grow the
    /// pools (growing is not safe under concurrent lookups; see Poptrie docs).
    unsigned pool_headroom_log2 = 1;

    /// Page backing for the node/leaf/direct arrays (alloc/arena.hpp):
    /// kAuto advises THP, kOn demands MAP_HUGETLB (with graceful fallback),
    /// kOff measures on plain pages. The backing actually obtained is
    /// reported by Poptrie::memory_report().
    alloc::HugepagePolicy hugepages = alloc::HugepagePolicy::kAuto;
};

/// Size and shape statistics, matching the columns of Table 2.
struct Stats {
    std::size_t internal_nodes = 0;  ///< "# of inodes"
    std::size_t leaves = 0;          ///< "# of leaves"
    std::size_t direct_slots = 0;    ///< 2^s (0 when direct pointing is off)

    /// Paper-style analytic footprint: inodes x (24 or 16 in basic mode)
    /// + leaves x 2 + direct slots x 4 bytes.
    std::size_t memory_bytes = 0;

    /// Actual bytes reserved by the node/leaf pools and the direct array
    /// (includes buddy-allocator headroom).
    std::size_t allocated_bytes = 0;

    /// Buddy-allocator slots currently handed out (power-of-two rounded).
    /// After withdrawing every route and draining reclamation these return
    /// to the empty-table baseline — the tests use them as a leak check.
    std::size_t node_pool_used = 0;
    std::size_t leaf_pool_used = 0;

    /// Fragmentation signals (per pool): how many blocks sit on the buddy
    /// free lists, the largest run still allocatable, and the high-water
    /// mark (one past the highest slot ever handed out). A fresh or
    /// freshly-compacted pool has few free blocks and a high-water close to
    /// the live size; a long churn feed scatters both.
    std::size_t node_free_blocks = 0;
    std::size_t leaf_free_blocks = 0;
    std::size_t node_largest_free_run = 0;
    std::size_t leaf_largest_free_run = 0;
    std::size_t node_high_water = 0;
    std::size_t leaf_high_water = 0;
};

}  // namespace poptrie
