// poptrie/lanes.hpp — SIMD lane paths and runtime dispatch for the batched
// lookup walk (DESIGN.md §12).
//
// lookup_pipelined.ipp overlaps the cache misses of independent lookups with
// scalar code and software prefetch. This module adds the explicit-SIMD
// formulation of the same state machine for IPv4: eight lanes held in vector
// registers, node words fetched with hardware gathers (vpgatherqq), and the
// paper's popcount(vector & ((2 << v) - 1)) evaluated lane-parallel — via
// the pshufb nibble-LUT trick on AVX2, via native vpopcntq on AVX-512.
//
// Lane paths form a ladder:
//
//   kScalar     one lookup at a time (lookup_one per key) — the reference.
//   kPipelined  the interleaved prefetch state machine from the .ipp.
//   kAvx2       8-lane gathers + popcount-via-shuffle. Compile-time gated
//               by POPTRIE_SIMD_AVX2, runtime by cpuid(avx2).
//   kAvx512     same shape, one 512-bit gather per node word and native
//               vpopcntq. Gated by POPTRIE_SIMD_AVX512 and
//               cpuid(avx512f && avx512vpopcntdq).
//
// Dispatch policy: select() picks the best compiled-in path the CPU
// supports, unless the POPTRIE_FORCE_LANES environment variable (or an
// explicit request) names one. A forced path that is unknown, not compiled
// in, or unsupported by the CPU is an *error* (Selection.ok == false), never
// a silent fallback — CI's simd-dispatch step depends on a forced run
// meaning what it says.
//
// Concurrency: SIMD gathers are plain loads with no acquire ordering, so
// every kernel here reads through batch::PlainView and is safe only against
// an immutable structure (a SnapshotFib image, or a live Poptrie with no
// concurrent updater — the kSupportsChurn=false engine contract). The churn
// path, PoptrieEngine → Poptrie::lookup_batch, stays on the AtomicView
// pipelined walk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netbase/ipv4.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/route.hpp"
#include "sync/annotations.hpp"

// Compile-time gates, normally injected by CMake (POPTRIE_SIMD_AVX2 /
// POPTRIE_SIMD_AVX512 options, ON by default on x86_64). Default to off so
// a bare compile of this header is portable.
#ifndef POPTRIE_SIMD_AVX2
#define POPTRIE_SIMD_AVX2 0
#endif
#ifndef POPTRIE_SIMD_AVX512
#define POPTRIE_SIMD_AVX512 0
#endif

namespace poptrie::lanes {

/// The batch lookup implementations, in dispatch-preference order.
enum class LanePath : unsigned {
    kScalar = 0,
    kPipelined = 1,
    kAvx2 = 2,
    kAvx512 = 3,
};

/// Every path, for iteration (tests, the dispatch report, benchctl rows).
inline constexpr LanePath kAllPaths[] = {LanePath::kScalar, LanePath::kPipelined,
                                         LanePath::kAvx2, LanePath::kAvx512};

[[nodiscard]] std::string_view name(LanePath path) noexcept;
[[nodiscard]] std::optional<LanePath> parse(std::string_view text) noexcept;

/// Was this path's kernel built into the binary (POPTRIE_SIMD_* options)?
[[nodiscard]] bool compiled_in(LanePath path) noexcept;

/// Does the running CPU support this path (cached cpuid probe)?
[[nodiscard]] bool cpu_supports(LanePath path) noexcept;

/// The outcome of resolving a lane-path request against the build and CPU.
struct Selection {
    LanePath path = LanePath::kPipelined;
    bool forced = false;  ///< an explicit request or POPTRIE_FORCE_LANES won
    bool ok = true;       ///< false: the forced path is unusable; note says why
    std::string note;     ///< diagnostic for the ok == false case
};

/// Resolves `request` (or, when empty, the POPTRIE_FORCE_LANES environment
/// variable; or, when that is unset too, automatic selection) to a usable
/// path. Automatic selection walks the ladder downward and always succeeds
/// (kPipelined has no gate). A forced path that cannot run reports
/// ok == false with the reason, and `path` holds the automatic choice the
/// caller may explicitly decide to continue with — callers surface the
/// failure (exit 2 in tools, skip-with-log in tests) rather than silently
/// serving a different path than the one demanded.
[[nodiscard]] Selection select(std::optional<LanePath> request = std::nullopt);

/// The IPv4 view the kernels gather from. Obtain one from
/// Poptrie4::batch_view() (no-churn contract) or SnapshotFib4 (immutable).
using View4 = batch::PlainView<std::uint32_t,
                               poptrie::Poptrie<netbase::Ipv4Addr>::Node>;

/// Resolves `n` keys down the chosen lane path. `path` must be usable
/// (select() said so); an uncompiled/unsupported path degrades to the
/// pipelined walk only as a defense against contract violations — dispatch
/// decisions belong in select(), not here. View4 reads with plain loads:
/// callers guarantee no concurrent updater (see header comment).
POPTRIE_HOT void run(LanePath path, const View4& view, const std::uint32_t* keys,
                     rib::NextHop* out, std::size_t n) noexcept;

/// The individual paths, exposed for the equivalence tests and the fuzzer's
/// lane-selector byte. Same contract as run().
POPTRIE_HOT void run_scalar(const View4& view, const std::uint32_t* keys,
                            rib::NextHop* out, std::size_t n) noexcept;
POPTRIE_HOT void run_pipelined(const View4& view, const std::uint32_t* keys,
                               rib::NextHop* out, std::size_t n) noexcept;
POPTRIE_HOT void run_avx2(const View4& view, const std::uint32_t* keys,
                          rib::NextHop* out, std::size_t n) noexcept;
POPTRIE_HOT void run_avx512(const View4& view, const std::uint32_t* keys,
                            rib::NextHop* out, std::size_t n) noexcept;

}  // namespace poptrie::lanes
