// poptrie/updater.ipp — §3.5 incremental, lock-free update (included by
// poptrie.cpp; do not include directly).
//
// Strategy (mirrors the paper's three steps):
//  1. The route change is applied to the RIB radix tree first; the affected
//     address range is [prefix.first, prefix.last] and a poptrie slot is
//     untouched when it does not intersect that range or when a route deeper
//     than the updated prefix covers its whole block (the geometric
//     equivalent of the paper's radix-node marking).
//  2. Affected subtrees are recompiled bottom-up, reusing the node structs of
//     untouched slots; new arrays are allocated from the buddy pools.
//  3. Publication: when a rebuilt node keeps its vector and leafvec, its new
//     arrays are published by release-storing base0/base1 in place; when the
//     shape changes, the fresh node propagates up into its parent's new child
//     array, at worst reaching the top where a single direct-pointing slot
//     (or the root index) is swapped atomically. Replaced arrays are retired
//     through the EBR domain and freed only after a grace period.
#pragma once

#include <algorithm>
#include <cassert>

#include "poptrie/poptrie.hpp"

namespace poptrie {

template <class Addr>
void Poptrie<Addr>::retire_nodes(std::uint32_t offset, std::uint32_t count)
{
    inode_count_ -= count;
    if (in_update_) updates_.nodes_retired += count;
    auto* const pool = node_alloc_.get();
    ebr_->retire([pool, offset, count] { pool->free(offset, count); });
}

template <class Addr>
void Poptrie<Addr>::retire_leaves(std::uint32_t offset, std::uint32_t count)
{
    leaf_count_ -= count;
    if (in_update_) updates_.leaves_retired += count;
    if (offset & kLeaf8Bit) {
        // Dict-coded runs are bump-placed in the dense code array, not buddy
        // allocated: dropping one only updates the live count. The storage
        // itself stays resident (readers may still be inside it) until the
        // next compact() rebuilds the array from the reachable set.
        leaf8_live_ -= count;
        return;
    }
    auto* const pool = leaf_alloc_.get();
    ebr_->retire([pool, offset, count] { pool->free(offset, count); });
}

template <class Addr>
void Poptrie<Addr>::retire_contents(const Node& n)
{
    const auto count = static_cast<std::uint32_t>(netbase::popcount64(n.vector));
    for (std::uint32_t i = 0; i < count; ++i) retire_contents(nodes_[n.base1 + i]);
    if (count != 0) retire_nodes(n.base1, count);
    const auto leaf_count = leaf_count_of(n);
    if (leaf_count != 0) retire_leaves(n.base0, leaf_count);
}

template <class Addr>
typename Poptrie<Addr>::Rebuilt Poptrie<Addr>::update_node(std::uint32_t index,
                                                           const detail::SlotCtx<Addr>& slot,
                                                           unsigned level, value_type base,
                                                           const Affected& aff)
{
    const Node old = nodes_[index];
    detail::SlotCtx<Addr> slots[64];
    detail::expand_stride<Addr>(slot, level, std::span<detail::SlotCtx<Addr>, 64>{slots});

    // Geometry of one slot's address block at this level (blocks shrink
    // below 6 bits near the bottom of the address; duplicate padded slots
    // collapse onto the same block, matching chunk()'s zero padding).
    const unsigned real_bits = kWidth - level >= kStride ? kStride : kWidth - level;
    const unsigned pad_bits = kStride - real_bits;
    const unsigned span_bits = kWidth - level - real_bits;
    // shift-ok: real_bits >= 1, so span_bits <= kWidth - level - 1 < kWidth
    // (the operand's width); the ternary handles span_bits == 0.
    const value_type span_ones =
        span_bits == 0 ? value_type{0}
                       : static_cast<value_type>((value_type{1} << span_bits) - 1);

    Node n;
    Node kids[64];
    NextHop new_leaves[64];
    unsigned nkids = 0;
    unsigned nleaves = 0;
    NextHop last = rib::kNoRoute;
    bool have_last = false;
    const auto push_leaf = [&](NextHop v, unsigned u) {
        if (cfg_.leaf_compression) {
            if (!have_last || v != last) {
                n.leafvec |= std::uint64_t{1} << u;
                new_leaves[nleaves++] = v;
                last = v;
                have_last = true;
            }
        } else {
            new_leaves[nleaves++] = v;
        }
    };

    for (unsigned u = 0; u < 64; ++u) {
        // shift-ok: pad_bits <= kStride - 1 < 64 and span_bits < kWidth (above).
        const value_type lo =
            base | (static_cast<value_type>(std::uint64_t{u} >> pad_bits) << span_bits);
        const value_type hi = lo | span_ones;
        const bool overlaps = !(hi < aff.lo || aff.hi < lo);
        const bool touched = overlaps && !(slots[u].route_depth > aff.plen);
        const bool old_internal = (old.vector >> u) & 1;

        if (!touched) {
            if (old_internal) {
                n.vector |= std::uint64_t{1} << u;
                kids[nkids++] = nodes_[old_child_index(old, u)];
            } else {
                push_leaf(old_leaf_value(old, u), u);
            }
            continue;
        }
        if (detail::is_internal(slots[u])) {
            n.vector |= std::uint64_t{1} << u;
            if (old_internal) {
                const std::uint32_t child = old_child_index(old, u);
                const Rebuilt r = update_node(child, slots[u], level + kStride, lo, aff);
                kids[nkids++] = r.replaced ? r.fresh : nodes_[child];
            } else {
                kids[nkids++] = make_node(slots[u], level + kStride);
            }
        } else {
            push_leaf(slots[u].inherited, u);
            if (old_internal) retire_contents(nodes_[old_child_index(old, u)]);
        }
    }

    const auto old_nkids = static_cast<std::uint32_t>(netbase::popcount64(old.vector));
    const auto old_nleaves = leaf_count_of(old);
    const bool shape_same =
        n.vector == old.vector && (!cfg_.leaf_compression || n.leafvec == old.leafvec);
    const bool kids_equal =
        nkids == old_nkids && std::equal(kids, kids + nkids, nodes_.begin() + old.base1);
    // leaf_at() rather than std::equal over leaves_: old.base0 may be a
    // dict-coded (kLeaf8Bit-tagged) run after a compact() under
    // Config::leaf_dict.
    bool leaves_equal = nleaves == old_nleaves;
    for (unsigned i = 0; leaves_equal && i < nleaves; ++i)
        leaves_equal = new_leaves[i] == leaf_at(old.base0 + i);

    if (shape_same) {
        if (kids_equal && leaves_equal) return {};  // children self-published, or no-op
        // In-place publication: the node keeps its identity, only the arrays
        // it points at are replaced (the paper's "replace the root's node
        // array or leaf array with an atomic instruction").
        if (!kids_equal) {
            std::uint32_t nb1 = 0;
            if (nkids != 0) {
                nb1 = alloc_nodes(nkids);
                std::copy(kids, kids + nkids, nodes_.begin() + nb1);
            }
            psync::store_release(nodes_[index].base1, nb1);
            if (old_nkids != 0) retire_nodes(old.base1, old_nkids);
        }
        if (!leaves_equal) {
            std::uint32_t nb0 = 0;
            if (nleaves != 0) {
                nb0 = alloc_leaves(nleaves);
                std::copy(new_leaves, new_leaves + nleaves, leaves_.begin() + nb0);
            }
            psync::store_release(nodes_[index].base0, nb0);
            if (old_nleaves != 0) retire_leaves(old.base0, old_nleaves);
        }
        return {};
    }

    // Shape changed: hand a fresh node up to the caller.
    if (nkids != 0) {
        n.base1 = alloc_nodes(nkids);
        std::copy(kids, kids + nkids, nodes_.begin() + n.base1);
    }
    if (nleaves != 0) {
        n.base0 = alloc_leaves(nleaves);
        std::copy(new_leaves, new_leaves + nleaves, leaves_.begin() + n.base0);
    }
    if (old_nkids != 0) retire_nodes(old.base1, old_nkids);
    if (old_nleaves != 0) retire_leaves(old.base0, old_nleaves);
    return {true, n};
}

template <class Addr>
void Poptrie<Addr>::update_direct_slot(const rib::RadixTrie<Addr>& rib, std::uint64_t d,
                                       const Affected& aff)
{
    const unsigned s = cfg_.direct_bits;
    const auto slot = detail::walk_to(rib, d, s);
    if (slot.route_depth > aff.plen) return;  // a more specific route shadows this block
    // shift-ok: direct pointing is on here, so valid_config() gives
    // 1 <= s < kWidth and the count is in [1, kWidth - 1].
    const value_type base = static_cast<value_type>(static_cast<value_type>(d)
                                                    << (kWidth - s));
    const std::uint32_t old = direct_[d];

    if (detail::is_internal(slot)) {
        if (old & kDirectLeafBit) {
            const Node content = make_node(slot, s);
            const std::uint32_t idx = alloc_nodes(1);
            nodes_[idx] = content;
            psync::store_release(direct_[d], idx);
            ++updates_.direct_stores;
        } else {
            const Rebuilt r = update_node(old, slot, s, base, aff);
            if (r.replaced) {
                const std::uint32_t idx = alloc_nodes(1);
                nodes_[idx] = r.fresh;
                psync::store_release(direct_[d], idx);
                ++updates_.direct_stores;
                retire_nodes(old, 1);
            }
        }
    } else {
        const std::uint32_t fresh = kDirectLeafBit | std::uint32_t{slot.inherited};
        if (fresh != old) {
            psync::store_release(direct_[d], fresh);
            ++updates_.direct_stores;
            if (!(old & kDirectLeafBit)) {
                retire_contents(nodes_[old]);
                retire_nodes(old, 1);
            }
        }
    }
}

template <class Addr>
void Poptrie<Addr>::apply(rib::RadixTrie<Addr>& rib, const prefix_type& prefix, NextHop next_hop)
{
    // writer: apply() is the single-updater entry point (§3.5 assumes
    // "single-threaded update operation"); the caller guarantees exactly one
    // thread is in here, so this thread holds the exclusive EBR role for the
    // duration of the patch.
    const psync::EbrWriterSection writer;
    if (next_hop == rib::kNoRoute) {
        rib.erase(prefix);
    } else {
        rib.insert(prefix, next_hop);
    }
    in_update_ = true;
    ++updates_.updates;
    const Affected aff{prefix.first_address().value(), prefix.last_address().value(),
                       prefix.length()};
    if (cfg_.direct_bits == 0) {
        const auto root = detail::root_ctx(rib);
        const Rebuilt r = update_node(root_, root, 0, value_type{0}, aff);
        if (r.replaced) {
            const std::uint32_t idx = alloc_nodes(1);
            nodes_[idx] = r.fresh;
            const std::uint32_t old = root_;
            psync::store_release(root_, idx);
            ++updates_.direct_stores;
            retire_nodes(old, 1);
        }
    } else {
        const std::uint64_t d_lo = netbase::extract(aff.lo, 0, cfg_.direct_bits);
        const std::uint64_t d_hi = netbase::extract(aff.hi, 0, cfg_.direct_bits);
        for (std::uint64_t d = d_lo; d <= d_hi; ++d) update_direct_slot(rib, d, aff);
    }
    in_update_ = false;
    ebr_->try_reclaim();
}

}  // namespace poptrie
