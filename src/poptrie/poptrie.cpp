// poptrie/poptrie.cpp — out-of-line member definitions and explicit
// instantiations for the two address families.

#include "poptrie/poptrie.hpp"

#include "poptrie/builder.ipp"
#include "poptrie/compactor.ipp"
#include "poptrie/updater.ipp"

namespace poptrie {

template class Poptrie<netbase::Ipv4Addr>;
template class Poptrie<netbase::Ipv6Addr>;

}  // namespace poptrie
