// poptrie/compactor.ipp — quiescent-point FIB compaction (included by
// poptrie.cpp; do not include directly).
//
// A long §3.5 churn feed keeps the buddy pools *compact* (coalescing bounds
// the footprint) but not *ordered*: replacement arrays land wherever the
// smallest fitting free block happens to be, so after a million updates the
// hot subtrees are scattered across the pools in allocation order and a
// lookup walk strides the whole array instead of one cache neighbourhood.
// compact() restores the fresh-build layout — better, a canonical one:
//
//   * every reachable subtree is copied into fresh arena-backed pools in
//     DFS pre-order with an aligned bump cursor (bump_offset): a node's
//     leaf run, then its child run, then each child's subtree in order, so
//     children are contiguous and adjacent to their parent;
//   * new buddy allocators are rebuilt as the exact image of that layout
//     via BuddyAllocator::reserve, then grown to the configured headroom —
//     subsequent incremental updates continue as if freshly built;
//   * root/direct indices are republished and the old arrays retired
//     through the EBR domain.
//
// Reader-safety contract: quiescent-point ONLY. The pool storage itself is
// swapped, which no publication order makes safe under concurrent lookups;
// callers pause forwarding threads first (lpmd --compact-every stops its
// worker pool around the call). The auditor replays the bump layout after
// compaction to verify dense, DFS-ordered occupancy (analysis::audit with
// AuditOptions::expect_compacted).
#pragma once

#include <algorithm>
#include <cassert>
#include <memory>

#include "poptrie/poptrie.hpp"

namespace poptrie {

template <class Addr>
void Poptrie<Addr>::collect_leaf_values(const Node& n, bool* seen) const
{
    const std::uint32_t nleaves = leaf_count_of(n);
    for (std::uint32_t i = 0; i < nleaves; ++i) seen[leaf_at(n.base0 + i)] = true;
    const auto nkids = static_cast<std::uint32_t>(netbase::popcount64(n.vector));
    for (std::uint32_t i = 0; i < nkids; ++i) collect_leaf_values(nodes_[n.base1 + i], seen);
}

template <class Addr>
typename Poptrie<Addr>::Node Poptrie<Addr>::compact_node(const Node& old, CompactPools& out)
{
    Node n = old;
    const std::uint32_t nleaves = leaf_count_of(old);
    if (nleaves != 0 && out.encode) {
        // Dict-coded placement: dense bump into the 8-bit code array (no
        // alignment — codes are never buddy-allocated), decoding the source
        // run through leaf_at (it may itself be a tagged run from the
        // previous compaction).
        const auto b0 = static_cast<std::uint32_t>(out.leaf8_cursor);
        out.leaf8_cursor += nleaves;
        if (out.leaves8.size() < out.leaf8_cursor) out.leaves8.resize(out.leaf8_cursor);
        for (std::uint32_t i = 0; i < nleaves; ++i)
            out.leaves8[b0 + i] = out.code_of[leaf_at(old.base0 + i)];
        n.base0 = kLeaf8Bit | b0;
    } else if (nleaves != 0) {
        const std::uint32_t b0 = bump_offset(out.leaf_cursor, nleaves);
        out.leaf_cursor = std::uint64_t{b0} + alloc::BuddyAllocator::block_size_for(nleaves);
        out.leaf_runs.emplace_back(b0, nleaves);
        if (out.leaves.size() < out.leaf_cursor) out.leaves.resize(out.leaf_cursor);
        for (std::uint32_t i = 0; i < nleaves; ++i)
            out.leaves[b0 + i] = leaf_at(old.base0 + i);
        n.base0 = b0;
    } else {
        n.base0 = 0;
    }
    const auto nkids = static_cast<std::uint32_t>(netbase::popcount64(old.vector));
    if (nkids != 0) {
        const std::uint32_t b1 = bump_offset(out.node_cursor, nkids);
        out.node_cursor = std::uint64_t{b1} + alloc::BuddyAllocator::block_size_for(nkids);
        out.node_runs.emplace_back(b1, nkids);
        if (out.nodes.size() < out.node_cursor) out.nodes.resize(out.node_cursor);
        n.base1 = b1;
        for (std::uint32_t i = 0; i < nkids; ++i)
            out.nodes[b1 + i] = compact_node(nodes_[old.base1 + i], out);
    } else {
        n.base1 = 0;
    }
    return n;
}

template <class Addr>
std::uint32_t Poptrie<Addr>::compact_root(std::uint32_t index, CompactPools& out)
{
    // A published root is its own single-node block (exactly as build_root
    // and update_direct_slot allocate them).
    const std::uint32_t fresh = bump_offset(out.node_cursor, 1);
    out.node_cursor = std::uint64_t{fresh} + 1;
    out.node_runs.emplace_back(fresh, 1);
    if (out.nodes.size() < out.node_cursor) out.nodes.resize(out.node_cursor);
    const Node copied = compact_node(nodes_[index], out);
    out.nodes[fresh] = copied;
    return fresh;
}

template <class Addr>
void Poptrie<Addr>::compact()
{
    // 1. Flush deferred reclamation: limbo deleters free into the *current*
    // allocators (retire_nodes/retire_leaves capture raw pointers to them),
    // so they must all run before the allocators are replaced.
    ebr_->drain();

    // 2. DFS-copy every reachable subtree into fresh pools.
    CompactPools out;
    out.nodes = NodePool(arena_.get());
    out.leaves = LeafPool(arena_.get());
    out.leaves8 = Leaf8Pool(arena_.get());
    out.leaf_dict = LeafPool(arena_.get());

    // Config::leaf_dict: pre-scan the reachable leaf runs for the distinct
    // next-hop population. At most 256 distinct values -> re-encode every
    // run as 8-bit dictionary codes; more -> plain 16-bit layout this cycle
    // (lookup results identical, just no compression).
    if (cfg_.leaf_dict) {
        auto seen = std::make_unique<bool[]>(std::size_t{1} << 16);
        if (cfg_.direct_bits == 0) {
            collect_leaf_values(nodes_[root_], seen.get());
        } else {
            for (const std::uint32_t v : direct_)
                if ((v & kDirectLeafBit) == 0) collect_leaf_values(nodes_[v], seen.get());
        }
        std::size_t distinct = 0;
        for (std::size_t v = 0; v < (std::size_t{1} << 16); ++v)
            if (seen[v]) ++distinct;
        if (distinct <= 256) {
            out.encode = true;
            out.leaf_dict.resize(distinct);
            out.code_of.assign(std::size_t{1} << 16, 0);
            std::size_t code = 0;
            for (std::size_t v = 0; v < (std::size_t{1} << 16); ++v) {
                if (!seen[v]) continue;
                out.leaf_dict[code] = static_cast<NextHop>(v);
                out.code_of[v] = static_cast<std::uint8_t>(code);
                ++code;
            }
        }
    }

    std::uint32_t fresh_root = 0;
    // Direct slots holding node indices, with their compacted replacements.
    std::vector<std::pair<std::size_t, std::uint32_t>> republish;
    if (cfg_.direct_bits == 0) {
        fresh_root = compact_root(root_, out);
    } else {
        for (std::size_t d = 0; d < direct_.size(); ++d) {
            const std::uint32_t v = direct_[d];
            if ((v & kDirectLeafBit) == 0) republish.emplace_back(d, compact_root(v, out));
        }
    }

    // 3. Rebuild the buddy allocators as the exact image of the bump layout,
    // then apply the same headroom policy as a fresh build so subsequent
    // updates never grow under readers.
    // shift-ok: valid_config() bounds pool_headroom_log2
    // <= kMaxPoolHeadroomLog2 (16) < 64.
    const std::uint64_t node_target =
        std::max(out.node_cursor,
                 std::uint64_t{std::max<std::size_t>(1024, inode_count_)}
                     << cfg_.pool_headroom_log2);
    // The 16-bit pool only has to hold the leaves that did NOT move into the
    // dict-coded array (all future update-path allocations land here).
    const std::uint64_t leaf16_live = out.encode ? 0 : leaf_count_;
    // shift-ok: same valid_config() bound as above.
    const std::uint64_t leaf_target =
        std::max(out.leaf_cursor,
                 std::uint64_t{std::max<std::size_t>(1024, leaf16_live)}
                     << cfg_.pool_headroom_log2);
    // Guard the uint32 narrowing below: a headroom-inflated target past the
    // allocator's 2^31 ceiling must surface as a clean rejection here (the
    // structure itself is untouched so far), never as a wrapped capacity.
    if (node_target > alloc::BuddyAllocator::kMaxCapacity ||
        leaf_target > alloc::BuddyAllocator::kMaxCapacity)
        throw netbase::StructuralLimit(
            "poptrie compact(): pool headroom target exceeds the 2^31 "
            "slot-index space (reduce pool_headroom_log2 or the table size)");
    auto fresh_node_alloc =
        std::make_unique<alloc::BuddyAllocator>(static_cast<std::uint32_t>(node_target));
    auto fresh_leaf_alloc =
        std::make_unique<alloc::BuddyAllocator>(static_cast<std::uint32_t>(leaf_target));
    for (const auto& [off, count] : out.node_runs) {
        const bool ok = fresh_node_alloc->reserve(off, count);
        assert(ok && "compact(): bump layout not representable in buddy allocator");
        (void)ok;
    }
    for (const auto& [off, count] : out.leaf_runs) {
        const bool ok = fresh_leaf_alloc->reserve(off, count);
        assert(ok && "compact(): bump layout not representable in buddy allocator");
        (void)ok;
    }
    out.nodes.resize(fresh_node_alloc->capacity());
    out.leaves.resize(fresh_leaf_alloc->capacity());

    // 4. Swap in the fresh pools and retire the old arrays through EBR.
    // retire() takes a copyable std::function, so the move-only pools ride
    // in shared_ptrs; the storage is released when the deleter runs (the
    // arena outlives it — see the member declaration order in poptrie.hpp).
    auto old_nodes = std::make_shared<NodePool>(std::move(nodes_));
    auto old_leaves = std::make_shared<LeafPool>(std::move(leaves_));
    auto old_leaves8 = std::make_shared<Leaf8Pool>(std::move(leaves8_));
    auto old_leaf_dict = std::make_shared<LeafPool>(std::move(leaf_dict_));
    nodes_ = std::move(out.nodes);
    leaves_ = std::move(out.leaves);
    leaves8_ = std::move(out.leaves8);
    leaf_dict_ = std::move(out.leaf_dict);
    node_alloc_ = std::move(fresh_node_alloc);
    leaf_alloc_ = std::move(fresh_leaf_alloc);
    leaf8_live_ = out.encode ? out.leaf8_cursor : 0;
    ebr_->retire([old_nodes, old_leaves, old_leaves8, old_leaf_dict]() mutable {
        old_nodes.reset();
        old_leaves.reset();
        old_leaves8.reset();
        old_leaf_dict.reset();
    });

    // 5. Republish the entry points into the compacted pools.
    if (cfg_.direct_bits == 0) {
        psync::store_release(root_, fresh_root);
    } else {
        for (const auto& [d, idx] : republish) psync::store_release(direct_[d], idx);
    }
}

}  // namespace poptrie
