// poptrie/poptrie.hpp — the paper's data structure: a 64-ary multiway trie
// whose descendant arrays are compressed with population-counted bit vectors.
//
// One class template covers IPv4 (Addr = netbase::Ipv4Addr) and IPv6
// (netbase::Ipv6Addr); the paper's §4.10 IPv6 variant is the same algorithm
// over a 128-bit key. All of the paper's design options are runtime
// configuration (see poptrie::Config):
//
//   * "basic"        — Config{.leaf_compression = false, .route_aggregation = false}
//   * "leafvec"      — Config{.leaf_compression = true,  .route_aggregation = false}
//   * "Poptrie"      — defaults (leafvec + aggregation)
//   * "PoptrieS"     — Config{.direct_bits = S} (§3.4 direct pointing)
//
// Concurrency contract (§3.5): any number of reader threads may call
// lookup() concurrently with a single writer thread calling apply().
// Replacement arrays are published with release stores and reclaimed through
// the EbrDomain; readers that run concurrently with updates must hold an
// EbrDomain::Guard around batches of lookups. Growing the node/leaf pools is
// NOT safe under concurrent readers — size headroom via Config, or quiesce.
//
// The contract is enforced statically (clang -Wthread-safety, DESIGN.md §9):
// the pools are GUARDED_BY the EBR capability (psync::cap::ebr), the serving
// path lookup_batch REQUIRES it shared (hold a real EBR guard and claim an
// EbrReadSection), mutation paths REQUIRE it exclusive, and the paths that
// move pool storage itself — compact(), reserve_headroom() — additionally
// REQUIRE psync::cap::quiescent (no reader anywhere). Scalar lookup()/
// lookup_raw() and apply() claim their sections internally: they are the
// single-threaded convenience API, and the claim marks the caller's
// obligation rather than spreading annotations through every test.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "alloc/arena.hpp"
#include "alloc/buddy_allocator.hpp"
#include "netbase/bits.hpp"
#include "netbase/prefix.hpp"
#include "poptrie/config.hpp"
#include "poptrie/detail.hpp"
#include "poptrie/lookup_pipelined.ipp"
#include "rib/radix_trie.hpp"
#include "rib/route.hpp"
#include "sync/annotations.hpp"
#include "sync/atomic_utils.hpp"
#include "sync/ebr.hpp"

namespace analysis {
struct AuditAccess;  // analysis/audit.hpp: read-only structural auditor hook
}

namespace snapshot {
struct SnapshotAccess;  // snapshot/snapshot.hpp: quiescent image writer hook
}

namespace poptrie {

/// Longest-prefix-match FIB compiled from a rib::RadixTrie.
template <class Addr>
class Poptrie {
public:
    using addr_type = Addr;
    using value_type = typename Addr::value_type;
    using prefix_type = netbase::Prefix<Addr>;
    using NextHop = rib::NextHop;

    /// Bits consumed per trie level (k in the paper; 6 → 64-ary).
    static constexpr unsigned kStride = 6;
    static_assert(kStride == kStrideBits,
                  "config.hpp states the layout invariants in terms of kStrideBits");
    /// Address width in bits.
    static constexpr unsigned kWidth = Addr::kWidth;
    /// Direct-pointing slot flag: MSB set means the slot holds a FIB index
    /// directly (§3.4), clear means it holds an internal-node index.
    static constexpr std::uint32_t kDirectLeafBit = 0x8000'0000u;
    static_assert(kDirectLeafBit == batch::kDirectLeafBitValue,
                  "lookup_pipelined.ipp restates the flag to stay template-free");
    /// Dictionary-coded leaf-run flag (Config::leaf_dict): a base0 with this
    /// MSB set addresses an 8-bit code run, not a 16-bit leaf run (config.hpp).
    static constexpr std::uint32_t kLeaf8Bit = poptrie::kLeaf8Bit;

    /// Internal node, exactly the paper's layout: 24 bytes with leafvec,
    /// 16 effective bytes in "basic" mode (leafvec unused).
    struct Node {
        std::uint64_t vector = 0;   ///< bit n = 1: child n is an internal node
        std::uint64_t leafvec = 0;  ///< bit n = 1: slot n starts a new leaf run (§3.3)
        std::uint32_t base0 = 0;    ///< first index of this node's leaves in L
        std::uint32_t base1 = 0;    ///< first index of this node's children in N

        friend bool operator==(const Node&, const Node&) = default;
    };

    /// Cumulative incremental-update accounting (§4.9's "number of
    /// replacements ... per update").
    struct UpdateCounters {
        std::uint64_t updates = 0;
        std::uint64_t direct_stores = 0;     ///< top-level array slots replaced
        std::uint64_t nodes_allocated = 0;   ///< internal nodes written
        std::uint64_t leaves_allocated = 0;  ///< leaf slots written
        std::uint64_t nodes_retired = 0;
        std::uint64_t leaves_retired = 0;
        std::uint64_t pool_growths = 0;  ///< pool grew mid-update (reader-unsafe)
    };

    /// The flat pools live in arena-backed storage (alloc/arena.hpp), so
    /// the node, leaf, and direct arrays sit on huge pages when available.
    using NodePool = alloc::ArenaVector<Node>;
    using LeafPool = alloc::ArenaVector<NextHop>;
    using DirectPool = alloc::ArenaVector<std::uint32_t>;
    /// Dense 8-bit code array for dict-coded leaf runs (Config::leaf_dict).
    using Leaf8Pool = alloc::ArenaVector<std::uint8_t>;

    /// Builds an empty FIB (every lookup returns rib::kNoRoute).
    explicit Poptrie(const Config& cfg = {});

    /// Compiles a FIB from `rib` (route aggregation applied per cfg).
    explicit Poptrie(const rib::RadixTrie<Addr>& rib, const Config& cfg = {});

    Poptrie(Poptrie&&) noexcept = default;
    Poptrie& operator=(Poptrie&&) noexcept = default;

    /// Longest-prefix-match lookup; kNoRoute on miss. Dispatches once on the
    /// configuration; benches use lookup_raw<> to pin the specialization.
    POPTRIE_HOT [[nodiscard]] NextHop lookup(Addr addr) const noexcept
    {
        return cfg_.leaf_compression ? lookup_raw<true>(addr.value())
                                     : lookup_raw<false>(addr.value());
    }

    /// The hot path (Algorithms 1–3 fused). UseLeafvec selects Algorithm 2's
    /// leaf compression; SoftPopcount swaps the popcnt instruction for the
    /// portable fallback (§3.2), for the ablation bench.
    template <bool UseLeafvec, bool SoftPopcount = false>
    POPTRIE_HOT [[nodiscard]] NextHop lookup_raw(value_type key) const noexcept
    {
        // reader: scalar convenience path — the degenerate one-lookup read
        // section. Callers racing a concurrent apply() must still hold a
        // real EBR guard around their burst (the dataplane serving path goes
        // through lookup_batch, which REQUIRES the capability instead).
        const psync::EbrReadSection section;
        return lookup_impl<UseLeafvec, SoftPopcount>(key, cfg_.direct_bits);
    }

private:
    /// lookup_raw with the direct-pointing dispatch hoisted: callers that
    /// resolve many keys (lookup_batch) read cfg_.direct_bits once and pass
    /// it down, instead of re-reading the config per key.
    template <bool UseLeafvec, bool SoftPopcount = false>
    POPTRIE_HOT [[nodiscard]] NextHop lookup_impl(value_type key, unsigned direct_bits) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        constexpr auto pop = [](std::uint64_t v) noexcept {
            if constexpr (SoftPopcount)
                return netbase::popcount64_table(v);  // see bits.hpp: _soft folds to popcnt
            else
                return netbase::popcount64(v);
        };
        std::uint32_t index;
        unsigned offset;
        if (direct_bits != 0) {  // Algorithm 3: direct pointing
            const auto slot = static_cast<std::size_t>(
                netbase::extract(key, 0, direct_bits));
            const std::uint32_t dindex = psync::load_acquire(direct_[slot]);
            if (dindex & kDirectLeafBit)
                return static_cast<NextHop>(dindex & ~kDirectLeafBit);
            index = dindex;
            offset = direct_bits;
        } else {
            // Acquire: apply() can republish the root index concurrently
            // (direct_bits == 0 puts the §3.5 atomic swap on this field).
            index = psync::load_acquire(root_);
            offset = 0;
        }
        std::uint64_t v = chunk(key, offset);
        std::uint64_t vector = psync::load_relaxed(nodes_[index].vector);
        while (vector & (std::uint64_t{1} << v)) {  // Algorithm 1 main loop
            const std::uint32_t base = psync::load_acquire(nodes_[index].base1);
            const auto bc =
                static_cast<std::uint32_t>(pop(vector & netbase::low_mask_inclusive(
                                                             static_cast<unsigned>(v))));
            index = base + bc - 1;
            vector = psync::load_relaxed(nodes_[index].vector);
            offset += kStride;
            v = chunk(key, offset);
        }
        const std::uint32_t base = psync::load_acquire(nodes_[index].base0);
        const std::uint64_t lv = UseLeafvec ? psync::load_relaxed(nodes_[index].leafvec)
                                            : ~vector;  // Algorithm 1 line 14
        const auto bc = static_cast<std::uint32_t>(
            pop(lv & netbase::low_mask_inclusive(static_cast<unsigned>(v))));
        const std::uint32_t slot = base + bc - 1;
        if (slot & kLeaf8Bit) {  // dict-coded run (Config::leaf_dict)
            const std::uint8_t code = psync::load_relaxed(leaves8_[slot & ~kLeaf8Bit]);
            return psync::load_relaxed(leaf_dict_[code]);
        }
        return psync::load_relaxed(leaves_[slot]);
    }

public:
    /// Batched lookup: resolves `n` keys into `out`, walking `Lanes` lookups
    /// in lockstep with software prefetch one trie level ahead. A single
    /// lookup is a chain of dependent loads, so a forwarding loop that has a
    /// vector of destinations in hand (it always does — packets arrive in
    /// bursts) can overlap the memory latency of independent lookups. This
    /// is an extension beyond the paper; bench_ablation_options and
    /// bench_batch_pipeline quantify it. The state machine itself lives in
    /// lookup_pipelined.ipp (shared with SnapshotFib); this wrapper binds it
    /// to the AtomicView the §3.5 churn contract requires. This is the
    /// dataplane serving path, so unlike lookup() it does not claim its own
    /// read section: the caller must hold the shared EBR capability (a live
    /// guard + EbrReadSection) for the whole burst — which is also what
    /// makes the pool-pointer hoist into the view sound.
    template <bool UseLeafvec, unsigned Lanes = 8>
    POPTRIE_HOT void lookup_batch(const value_type* keys, NextHop* out, std::size_t n) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        const batch::AtomicView<value_type, Node> view{nodes_.data(),  leaves_.data(),
                                                       direct_.data(), &root_,
                                                       leaves8_.data(), leaf_dict_.data()};
        // One config read per call: the direct/root dispatch is loop-
        // invariant, so hoist it instead of re-reading cfg_ per lane.
        batch::lookup_batch_pipelined<UseLeafvec, Lanes>(view, keys, out, n,
                                                         cfg_.direct_bits);
    }

    /// Plain-load view over the published structure, for the read-only
    /// pipelined/SIMD engines (dataplane::PipelinedEngine) and the SIMD lane
    /// kernels (poptrie/lanes.hpp), whose vector gathers cannot carry the
    /// acquire ordering the churn contract needs. Safe only when no
    /// concurrent updater exists for the lifetime of the view — the
    /// kSupportsChurn=false engine contract — which is why this is not the
    /// path PoptrieEngine serves from.
    [[nodiscard]] batch::PlainView<value_type, Node> batch_view() const noexcept
        POPTRIE_NO_TSA  // no-churn contract replaces the EBR capability: with
                        // no writer the pools are immutable and plain loads
                        // plus the pointer hoist are trivially sound.
    {
        return {nodes_.data(), leaves_.data(),  direct_.data(),
                root_,         cfg_.direct_bits, cfg_.leaf_compression,
                leaves8_.data(), leaf_dict_.data()};
    }

    /// Applies one route change (§3.5 incremental update): updates `rib`
    /// (insert/replace when next_hop != kNoRoute, withdraw otherwise) and
    /// patches this FIB in place, publishing atomically and retiring replaced
    /// arrays through the EBR domain. `rib` must be the table this FIB
    /// currently reflects. When the FIB was built with route aggregation the
    /// touched subtrees are recompiled from the unaggregated RIB — the
    /// lookup results are identical, the touched region is merely compressed
    /// a little less tightly than a full rebuild would achieve.
    void apply(rib::RadixTrie<Addr>& rib, const prefix_type& prefix, NextHop next_hop);

    /// Registers the calling thread for safe lookups concurrent with apply().
    [[nodiscard]] psync::EbrDomain::Reader register_reader() { return ebr_->register_reader(); }

    /// Runs pending reclamation to completion. Writer-role only (exclusive
    /// EBR capability): claim an EbrWriterSection on the updater thread, or
    /// a QuiescentSection at a shutdown/maintenance point.
    void drain() POPTRIE_REQUIRES(psync::cap::ebr) { ebr_->drain(); }

    /// Pre-grows the node/leaf pools to the configured headroom over the
    /// current occupancy. Quiescent-point only: growing reallocates the
    /// arrays, which is not safe under concurrent lookups — call after
    /// bulk-loading routes incrementally and *before* starting forwarding
    /// threads, so a subsequent update feed never grows under readers.
    void reserve_headroom() POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr)
    {
        ensure_headroom();
    }

    /// Rewrites the node and leaf arrays in DFS traversal order — every
    /// node's children contiguous and adjacent to their parent, leaf runs
    /// interleaved at the point the lookup walk reaches them — into fresh
    /// dense pools, resets the buddy allocators to match, republishes the
    /// root/direct indices, and retires the old arrays through the EBR
    /// domain. Restores fresh-build locality after a long churn feed (the
    /// buddy allocator alone preserves *compactness* but not *order*).
    ///
    /// Quiescent-point ONLY: the pool storage itself is replaced, which no
    /// amount of careful publication makes safe under concurrent lookups.
    /// Pause forwarding threads (lpmd stops its worker pool), run compact(),
    /// resume. Lookup results are identical before and after. The analysis
    /// enforces exactly that: calling it without the quiescence capability
    /// (a QuiescentSection claimed at a proven no-reader point) fails the
    /// POPTRIE_TSA build.
    void compact() POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr);

    /// The canonical compacted layout rule, shared with the auditor: a run
    /// of `count` slots lands at the next block_size_for(count)-aligned
    /// offset at or after `cursor`. compact() places runs with exactly this
    /// rule in DFS order, which is what the post-compaction audit replays.
    [[nodiscard]] static std::uint32_t bump_offset(std::uint64_t cursor,
                                                   std::uint32_t count) noexcept
    {
        const std::uint64_t size = alloc::BuddyAllocator::block_size_for(count);
        return static_cast<std::uint32_t>((cursor + size - 1) / size * size);
    }

    /// Page backing actually obtained for the pools (alloc/arena.hpp).
    [[nodiscard]] alloc::MemoryReport memory_report() const noexcept
    {
        return arena_->report();
    }

    /// Size/shape statistics (Table 2 columns).
    [[nodiscard]] Stats stats() const noexcept;

    /// Cumulative update accounting (§4.9).
    [[nodiscard]] const UpdateCounters& update_counters() const noexcept { return updates_; }

    /// The configuration this FIB was built with.
    [[nodiscard]] const Config& config() const noexcept { return cfg_; }

private:
    // --- shared by builder & updater (definitions in poptrie.cpp). All of
    // --- them mutate the EBR-guarded pools, so all REQUIRE the exclusive
    // --- capability (held via apply()'s writer section or a ctor/compact
    // --- quiescent section).
    void build_from(const rib::RadixTrie<Addr>& rib) POPTRIE_REQUIRES(psync::cap::ebr);
    Node make_node(const detail::SlotCtx<Addr>& slot, unsigned level)
        POPTRIE_REQUIRES(psync::cap::ebr);
    std::uint32_t build_root(const detail::SlotCtx<Addr>& slot, unsigned level)
        POPTRIE_REQUIRES(psync::cap::ebr);
    std::uint32_t alloc_nodes(std::uint32_t n) POPTRIE_REQUIRES(psync::cap::ebr);
    std::uint32_t alloc_leaves(std::uint32_t n) POPTRIE_REQUIRES(psync::cap::ebr);
    void ensure_headroom() POPTRIE_REQUIRES(psync::cap::ebr);

    // --- updater internals ---
    struct Rebuilt {
        bool replaced = false;
        Node fresh{};
    };
    struct Affected {
        value_type lo{};
        value_type hi{};
        unsigned plen = 0;
    };
    Rebuilt update_node(std::uint32_t index, const detail::SlotCtx<Addr>& slot, unsigned level,
                        value_type base, const Affected& aff) POPTRIE_REQUIRES(psync::cap::ebr);
    void update_direct_slot(const rib::RadixTrie<Addr>& rib, std::uint64_t d,
                            const Affected& aff) POPTRIE_REQUIRES(psync::cap::ebr);
    void retire_nodes(std::uint32_t offset, std::uint32_t count)
        POPTRIE_REQUIRES(psync::cap::ebr);
    void retire_leaves(std::uint32_t offset, std::uint32_t count)
        POPTRIE_REQUIRES(psync::cap::ebr);
    // Descendant arrays incl. n's own.
    void retire_contents(const Node& n) POPTRIE_REQUIRES(psync::cap::ebr);

    // --- compaction internals (compactor.ipp) ---
    /// Fresh pools being filled in DFS order, plus the (offset, count) runs
    /// placed so far — replayed into new buddy allocators afterwards.
    struct CompactPools {
        NodePool nodes;
        LeafPool leaves;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> node_runs;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> leaf_runs;
        std::uint64_t node_cursor = 0;
        std::uint64_t leaf_cursor = 0;
        // Config::leaf_dict re-encoding state: when `encode` is set, leaf
        // runs land as dense 8-bit codes in `leaves8` (bump cursor, no
        // alignment — codes are never buddy-allocated) and `code_of` maps a
        // 16-bit next hop to its dictionary index.
        Leaf8Pool leaves8;
        LeafPool leaf_dict;
        std::uint64_t leaf8_cursor = 0;
        bool encode = false;
        std::vector<std::uint8_t> code_of;
    };
    std::uint32_t compact_root(std::uint32_t index, CompactPools& out)
        POPTRIE_REQUIRES(psync::cap::ebr);
    Node compact_node(const Node& n, CompactPools& out) POPTRIE_REQUIRES(psync::cap::ebr);
    /// Pre-scan for compact(): marks every distinct next-hop value reachable
    /// from `n`'s leaf runs in `seen` (a 65536-entry table).
    void collect_leaf_values(const Node& n, bool* seen) const
        POPTRIE_REQUIRES(psync::cap::ebr);

    /// 6-bit chunk at bit offset `off`, zero-padded past the address width
    /// (the builder uses the same convention, so the padded slots agree).
    POPTRIE_HOT [[nodiscard]] static std::uint64_t chunk(value_type key, unsigned off) noexcept
    {
        if (off >= kWidth) return 0;
        return static_cast<std::uint64_t>(static_cast<value_type>(key << off) >>
                                          (kWidth - kStride));
    }

    POPTRIE_HOT [[nodiscard]] std::uint32_t old_child_index(const Node& n, unsigned u) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        return n.base1 +
               static_cast<std::uint32_t>(netbase::popcount64(
                   n.vector & netbase::low_mask_inclusive(u))) -
               1;
    }

    /// Decodes one leaf slot by (possibly tagged) index: a kLeaf8Bit index
    /// reads the dense 8-bit code array through the dictionary, a plain index
    /// reads the 16-bit leaf pool. Control-path twin of the hot-path decode
    /// in lookup_impl; the updater and compactor funnel every leaf read here.
    [[nodiscard]] NextHop leaf_at(std::uint32_t i) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        if (i & kLeaf8Bit) return leaf_dict_[leaves8_[i & ~kLeaf8Bit]];
        return leaves_[i];
    }

    POPTRIE_HOT [[nodiscard]] NextHop old_leaf_value(const Node& n, unsigned u) const noexcept
        POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
    {
        const std::uint64_t lv = cfg_.leaf_compression ? n.leafvec : ~n.vector;
        return leaf_at(n.base0 +
                       static_cast<std::uint32_t>(
                           netbase::popcount64(lv & netbase::low_mask_inclusive(u))) -
                       1);
    }

    [[nodiscard]] std::uint32_t leaf_count_of(const Node& n) const noexcept
    {
        if (cfg_.leaf_compression)
            return static_cast<std::uint32_t>(netbase::popcount64(n.leafvec));
        return 64 - static_cast<std::uint32_t>(netbase::popcount64(n.vector));
    }

    Config cfg_{};
    // The arena backs every pool below and any storage retired through the
    // EBR domain; it is declared before them (so destroyed after ebr_ runs
    // pending deleters) and heap-allocated so those raw Arena* references
    // survive moves of the Poptrie object itself.
    std::unique_ptr<alloc::Arena> arena_ = std::make_unique<alloc::Arena>(cfg_.hugepages);
    // The pools and their allocators are the EBR-protected state: readers
    // may traverse them only inside a read-side critical section, and only
    // the single writer may mutate them (GUARDED_BY/PT_GUARDED_BY below).
    NodePool nodes_ POPTRIE_GUARDED_BY(psync::cap::ebr) = NodePool{arena_.get()};
    LeafPool leaves_ POPTRIE_GUARDED_BY(psync::cap::ebr) = LeafPool{arena_.get()};
    // Dict-coded leaf storage (Config::leaf_dict): dense 8-bit codes plus the
    // <= 256-entry dictionary. Written only by compact() at a quiescent
    // point; between compactions the contents are immutable (the updater
    // only *drops* tagged runs, it never writes them), so readers reach them
    // with relaxed loads through the published base0 indices.
    Leaf8Pool leaves8_ POPTRIE_GUARDED_BY(psync::cap::ebr) = Leaf8Pool{arena_.get()};
    LeafPool leaf_dict_ POPTRIE_GUARDED_BY(psync::cap::ebr) = LeafPool{arena_.get()};
    // 2^s entries when direct_bits > 0.
    DirectPool direct_ POPTRIE_GUARDED_BY(psync::cap::ebr) = DirectPool{arena_.get()};
    // Root node index when direct_bits == 0.
    std::uint32_t root_ POPTRIE_GUARDED_BY(psync::cap::ebr) = 0;
    // Heap-allocated so retired-block deleters can capture stable pointers
    // even if the Poptrie object itself is moved.
    std::unique_ptr<alloc::BuddyAllocator> node_alloc_ POPTRIE_GUARDED_BY(psync::cap::ebr)
        POPTRIE_PT_GUARDED_BY(psync::cap::ebr) = std::make_unique<alloc::BuddyAllocator>(1024);
    std::unique_ptr<alloc::BuddyAllocator> leaf_alloc_ POPTRIE_GUARDED_BY(psync::cap::ebr)
        POPTRIE_PT_GUARDED_BY(psync::cap::ebr) = std::make_unique<alloc::BuddyAllocator>(1024);
    std::unique_ptr<psync::EbrDomain> ebr_ = std::make_unique<psync::EbrDomain>();
    std::size_t inode_count_ = 0;
    std::size_t leaf_count_ = 0;
    // Of leaf_count_, how many slots live in the dict-coded 8-bit array.
    // leaf_count_ - leaf8_live_ is the 16-bit pool's live population, which
    // is what the headroom policy and the allocator cross-check care about.
    std::size_t leaf8_live_ = 0;
    UpdateCounters updates_{};
    bool in_update_ = false;

    // The structural auditor (analysis/audit.hpp) reads the private arrays,
    // allocators, and EBR domain to cross-check them against each other and
    // against the source RIB; tests also use it for fault injection.
    friend struct ::analysis::AuditAccess;
    // The snapshot writer (snapshot/snapshot.hpp) serializes the touched
    // extent of the pools plus the root metadata at a quiescent point.
    friend struct ::snapshot::SnapshotAccess;
};

using Poptrie4 = Poptrie<netbase::Ipv4Addr>;
using Poptrie6 = Poptrie<netbase::Ipv6Addr>;

extern template class Poptrie<netbase::Ipv4Addr>;
extern template class Poptrie<netbase::Ipv6Addr>;

}  // namespace poptrie
