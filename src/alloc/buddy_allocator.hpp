// alloc/buddy_allocator.hpp — index-based buddy memory allocator.
//
// Poptrie stores internal nodes and leaves in two flat arrays and refers to
// children by 32-bit *indices* (base0/base1), so its allocator must hand out
// contiguous runs of array slots, not pointers. This is the classic buddy
// system (Knowlton 1965), which the paper names as the allocator managing the
// node and leaf arrays; its power-of-two coalescing is what keeps incremental
// update (§3.5) from fragmenting the arrays.
//
// The allocator is a control-path structure: it is consulted on build and on
// route update, never during lookup, so the per-order ordered free lists
// favour clarity and strong invariants over nanosecond alloc cost.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "netbase/structural_limit.hpp"

namespace alloc {

/// Allocates contiguous runs of slots out of a pool of `capacity()` slots.
/// Run sizes are rounded up to powers of two internally; `free` must be given
/// the same count that was passed to `allocate`.
class BuddyAllocator {
public:
    using index_type = std::uint32_t;

    /// Largest capacity the allocator will manage: 2^31 slots. The pools it
    /// serves refer to slots through 32-bit indices whose MSB is reserved as
    /// a tag (poptrie's kDirectLeafBit / kLeaf8Bit), so every index must stay
    /// below bit 31 — and `capacity_ *= 2` past this would silently wrap the
    /// 32-bit capacity to zero. grow() throws netbase::StructuralLimit
    /// instead of crossing it.
    static constexpr index_type kMaxCapacity = index_type{1} << 31;

    /// Creates an allocator over `capacity` slots, rounded up to a power of
    /// two (minimum 1). Throws netbase::StructuralLimit above kMaxCapacity.
    explicit BuddyAllocator(index_type capacity);

    /// Allocates a contiguous run of at least `count` slots (count >= 1).
    /// Returns the index of the first slot, or nullopt if the pool cannot
    /// satisfy the request.
    [[nodiscard]] std::optional<index_type> allocate(index_type count);

    /// Returns the run starting at `offset` that was allocated with the same
    /// `count`. Freeing an unallocated or mismatched run is a programming
    /// error and asserts in debug builds.
    void free(index_type offset, index_type count);

    /// Marks the specific block [offset, offset + block_size_for(count)) as
    /// allocated, splitting the containing free block as needed. `offset`
    /// must be aligned to the rounded block size. Returns false (allocator
    /// unchanged) if the block is not entirely free. Used by the compaction
    /// pass to rebuild an allocator that exactly describes a bump-laid-out
    /// pool; `free(offset, count)` releases it like any allocation.
    [[nodiscard]] bool reserve(index_type offset, index_type count);

    /// Doubles the pool. New slots become immediately allocatable. Existing
    /// allocations are unaffected (indices are stable). Throws
    /// netbase::StructuralLimit when the doubled capacity would exceed
    /// kMaxCapacity — the caller sees a clean rejection, never a wrapped
    /// 32-bit capacity.
    void grow();

    /// Total slots managed (always a power of two).
    [[nodiscard]] index_type capacity() const noexcept { return capacity_; }

    /// Slots currently handed out (in rounded power-of-two units).
    [[nodiscard]] index_type used() const noexcept { return used_; }

    /// Largest run currently allocatable, 0 if the pool is full.
    [[nodiscard]] index_type largest_free_run() const noexcept;

    /// Number of blocks on the free lists. Together with largest_free_run()
    /// this is the fragmentation signal Poptrie::Stats exposes: a fresh or
    /// freshly-compacted pool has O(log capacity) free blocks, a churned one
    /// accumulates many small ones.
    [[nodiscard]] std::size_t free_block_count() const noexcept;

    /// One past the highest slot ever handed out (by allocate or reserve);
    /// never decreases. The touched extent of the backing array.
    [[nodiscard]] index_type high_water() const noexcept { return high_water_; }

    /// True if every slot is free (useful as a leak check in tests).
    [[nodiscard]] bool all_free() const noexcept { return used_ == 0; }

    /// One free block, for introspection: `size` slots starting at `offset`
    /// (`size` is always a power of two and `offset` is `size`-aligned when
    /// the allocator is consistent — the auditor verifies exactly that).
    struct FreeBlock {
        index_type offset = 0;
        index_type size = 0;

        friend bool operator==(const FreeBlock&, const FreeBlock&) = default;
    };

    /// Snapshot of every free block, ordered by (size, offset). Control-path
    /// introspection for `analysis::audit_allocator` and tests; the live
    /// structure is not exposed.
    [[nodiscard]] std::vector<FreeBlock> free_blocks() const;

    /// The size in slots a request for `count` slots actually occupies
    /// (power-of-two rounding). Exposed so the auditor can reconstruct the
    /// extent of a live run from the count the client allocated with.
    [[nodiscard]] static index_type block_size_for(index_type count) noexcept
    {
        return index_type{1} << order_for(count);
    }

private:
    static unsigned order_for(index_type count) noexcept;

    // free_lists_[k] holds offsets of free blocks of size 2^k.
    std::vector<std::set<index_type>> free_lists_;
    index_type capacity_ = 0;
    index_type used_ = 0;
    index_type high_water_ = 0;
};

}  // namespace alloc
