#include "alloc/buddy_allocator.hpp"

#include <bit>
#include <cassert>
#include <string>

namespace alloc {

BuddyAllocator::BuddyAllocator(index_type capacity)
{
    if (capacity > kMaxCapacity)
        throw netbase::StructuralLimit(
            "buddy allocator: requested capacity " + std::to_string(capacity) +
            " exceeds the 2^31 slot-index space");
    capacity_ = std::bit_ceil(capacity == 0 ? index_type{1} : capacity);
    const unsigned top = order_for(capacity_);
    free_lists_.resize(top + 1);
    free_lists_[top].insert(0);
}

unsigned BuddyAllocator::order_for(index_type count) noexcept
{
    assert(count >= 1);
    return static_cast<unsigned>(std::bit_width(std::bit_ceil(count)) - 1);
}

std::optional<BuddyAllocator::index_type> BuddyAllocator::allocate(index_type count)
{
    if (count == 0 || std::bit_ceil(count) > capacity_) return std::nullopt;
    const unsigned want = order_for(count);

    // Find the smallest free block that fits.
    unsigned k = want;
    while (k < free_lists_.size() && free_lists_[k].empty()) ++k;
    if (k >= free_lists_.size()) return std::nullopt;

    index_type offset = *free_lists_[k].begin();
    free_lists_[k].erase(free_lists_[k].begin());

    // Split down to the requested order, returning the upper halves.
    while (k > want) {
        --k;
        free_lists_[k].insert(offset + (index_type{1} << k));
    }
    used_ += index_type{1} << want;
    if (offset + (index_type{1} << want) > high_water_)
        high_water_ = offset + (index_type{1} << want);
    return offset;
}

bool BuddyAllocator::reserve(index_type offset, index_type count)
{
    if (count == 0) return false;
    const unsigned want = order_for(count);
    const index_type size = index_type{1} << want;
    if (offset % size != 0 || std::uint64_t{offset} + size > capacity_) return false;

    // Find the free block containing the target: at each order >= want, the
    // candidate is the (unique) aligned block covering `offset`.
    for (unsigned k = want; k < free_lists_.size(); ++k) {
        const index_type aligned = offset & ~((index_type{1} << k) - 1);
        const auto it = free_lists_[k].find(aligned);
        if (it == free_lists_[k].end()) continue;
        free_lists_[k].erase(it);

        // Split down, keeping the halves that do not contain the target.
        index_type cur = aligned;
        while (k > want) {
            --k;
            const index_type half = index_type{1} << k;
            if (offset < cur + half) {
                free_lists_[k].insert(cur + half);
            } else {
                free_lists_[k].insert(cur);
                cur += half;
            }
        }
        assert(cur == offset);
        used_ += size;
        if (offset + size > high_water_) high_water_ = offset + size;
        return true;
    }
    return false;  // target overlaps an existing allocation
}

void BuddyAllocator::free(index_type offset, index_type count)
{
    assert(count >= 1);
    unsigned k = order_for(count);
    assert(offset % (index_type{1} << k) == 0 && "misaligned free");
    assert(offset + (index_type{1} << k) <= capacity_);
    used_ -= index_type{1} << k;

    // Coalesce with the buddy while it is free.
    while (k + 1 < free_lists_.size()) {
        const index_type buddy = offset ^ (index_type{1} << k);
        const auto it = free_lists_[k].find(buddy);
        if (it == free_lists_[k].end()) break;
        free_lists_[k].erase(it);
        offset &= ~(index_type{1} << k);  // merged block starts at the lower buddy
        ++k;
    }
    assert(!free_lists_[k].contains(offset) && "double free");
    free_lists_[k].insert(offset);
}

void BuddyAllocator::grow()
{
    if (capacity_ >= kMaxCapacity)
        throw netbase::StructuralLimit(
            "buddy allocator: growing past 2^31 slots would overflow the "
            "31-bit index space (tagged 32-bit slot indices)");
    const unsigned old_top = order_for(capacity_);
    free_lists_.resize(old_top + 2);
    // The upper half of the doubled pool becomes one free block of the old
    // size; it may immediately coalesce with a fully-free lower half.
    index_type offset = capacity_;
    unsigned k = old_top;
    while (k + 1 < free_lists_.size()) {
        const index_type buddy = offset ^ (index_type{1} << k);
        const auto it = free_lists_[k].find(buddy);
        if (it == free_lists_[k].end()) break;
        free_lists_[k].erase(it);
        offset &= ~(index_type{1} << k);
        ++k;
    }
    free_lists_[k].insert(offset);
    capacity_ *= 2;
}

std::vector<BuddyAllocator::FreeBlock> BuddyAllocator::free_blocks() const
{
    std::vector<FreeBlock> out;
    for (unsigned k = 0; k < free_lists_.size(); ++k)
        for (const index_type offset : free_lists_[k])
            out.push_back({offset, index_type{1} << k});
    return out;
}

std::size_t BuddyAllocator::free_block_count() const noexcept
{
    std::size_t n = 0;
    for (const auto& list : free_lists_) n += list.size();
    return n;
}

BuddyAllocator::index_type BuddyAllocator::largest_free_run() const noexcept
{
    for (auto k = free_lists_.size(); k-- > 0;)
        if (!free_lists_[k].empty()) return index_type{1} << k;
    return 0;
}

}  // namespace alloc
