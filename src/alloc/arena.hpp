// alloc/arena.hpp — page-aligned arena backing the FIB's flat arrays.
//
// Poptrie's performance argument (§3.1, §4.4) is that the whole FIB is small
// and contiguous enough to live in cache — but the *TLB* sees page-sized
// chunks, and a 1 MiB direct-pointing array on 4 KiB pages alone costs 256
// TLB entries before a single node is touched. This arena maps the node,
// leaf, and direct arrays with mmap and asks the kernel for huge pages:
//
//   * HugepagePolicy::kAuto  — anonymous mmap + madvise(MADV_HUGEPAGE), so
//     THP backs the arrays when the system allows it (the common case);
//   * HugepagePolicy::kOn    — explicit MAP_HUGETLB first (pre-reserved
//     2 MiB pages, no khugepaged latency), falling back to the kAuto path
//     when the reservation is empty — CI runners have no hugepages at all;
//   * HugepagePolicy::kOff   — plain mmap, for A/B measurement.
//
// The backing *actually obtained* is recorded per block and aggregated into
// a MemoryReport (the weakest live backing wins), which benchkit stamps into
// bench provenance so hugepage and non-hugepage runs are distinguishable.
// Non-Linux builds degrade to zeroed heap blocks and report Backing::kHeap.
//
// ArenaVector<T> is the minimal std::vector replacement the pools need:
// trivially-copyable elements, geometric growth, zero-fill on resize. It is
// a control-path container — growth remaps and memcpys, so (like the
// vectors it replaces) growing is NOT safe under concurrent readers. In the
// capability model (sync/annotations.hpp, DESIGN.md §9) that rule surfaces
// one level up: the Poptrie pools built on ArenaVector are GUARDED_BY the
// EBR capability, and every path that can *grow or replace* them —
// ensure_headroom, compact — requires the quiescence capability too. The
// container itself stays annotation-free: it has no concurrency machinery
// of its own, only a lifetime contract its owners enforce.
#pragma once

#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>

#include "sync/annotations.hpp"

namespace alloc {

/// How hard the arena tries to obtain huge pages (Config::hugepages).
enum class HugepagePolicy {
    kAuto,  ///< madvise(MADV_HUGEPAGE): THP if available, silent otherwise
    kOn,    ///< MAP_HUGETLB first, then the kAuto path — never fails outright
    kOff,   ///< normal pages only (A/B baseline)
};

/// What actually backs a mapped block, weakest to strongest.
enum class Backing {
    kHeap,         ///< zeroed heap block (non-Linux or mmap failure)
    kFileMapped,   ///< read-only mmap of an on-disk image (snapshot restore)
    kNormalPages,  ///< anonymous mmap, base page size
    kThpAdvised,   ///< anonymous mmap + MADV_HUGEPAGE accepted by the kernel
    kHugetlb,      ///< explicit MAP_HUGETLB reservation
};

/// Number of Backing enumerators (sizes the per-backing accounting).
inline constexpr int kBackingCount = 5;

/// Stable lowercase name for provenance / logs ("hugetlb", "thp-advised",
/// "normal-pages", "file-mapped", "heap").
[[nodiscard]] const char* backing_name(Backing b) noexcept;

/// Aggregate view of an arena's live mappings.
struct MemoryReport {
    Backing backing = Backing::kHeap;  ///< weakest backing among live blocks
    std::size_t page_size = 0;         ///< page size of that backing, bytes
    std::size_t bytes_reserved = 0;    ///< total bytes currently mapped
    bool hugetlb_requested = false;    ///< policy was kOn
    bool hugetlb_failed = false;       ///< MAP_HUGETLB was tried and refused
};

/// Test hook: when set, MAP_HUGETLB attempts fail deterministically (as on a
/// machine with an empty hugepage reservation), exercising the fallback path
/// regardless of host configuration. Not thread-safe; set before mapping.
void set_force_hugetlb_failure(bool force) noexcept;

/// The kernel's transparent-hugepage mode: the bracketed token of
/// /sys/kernel/mm/transparent_hugepage/enabled ("always", "madvise",
/// "never"), or "unavailable" when the file cannot be read.
[[nodiscard]] std::string thp_status();

/// Owns the mapping policy and accounts for the blocks handed out. Blocks
/// are held by ArenaVectors, which return them via unmap(); the arena must
/// outlive every vector it backs (Poptrie keeps it in a unique_ptr declared
/// before the pools for exactly that reason).
class Arena {
public:
    /// One mapped block. `bytes` is the mapped length (page-rounded), needed
    /// to unmap; `backing` selects the deallocation path.
    struct Block {
        void* ptr = nullptr;
        std::size_t bytes = 0;
        Backing backing = Backing::kHeap;
    };

    explicit Arena(HugepagePolicy policy = HugepagePolicy::kAuto) noexcept
        : policy_(policy)
    {
    }
    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;
    ~Arena() = default;

    /// Maps a zero-filled block of at least `bytes` bytes (page-rounded up).
    /// Never returns a null block: every backing failure falls through to
    /// the next-weaker one, ending at the heap.
    [[nodiscard]] Block map(std::size_t bytes);

    /// Maps an existing file read-only in its entirety (Backing::kFileMapped,
    /// for snapshot warm start — the pages stay in the page cache and are
    /// shared across processes mapping the same image). Unlike map() this CAN
    /// fail: a null block means the file could not be opened/mapped (or the
    /// platform has no mmap), and the caller falls back to copy-in via map().
    /// The hugepage policy does not apply — file mappings cannot be
    /// hugetlb-backed.
    [[nodiscard]] Block map_file(const std::string& path) noexcept;

    /// Returns a block obtained from map() or map_file(). Safe on empty
    /// blocks.
    void unmap(Block& block) noexcept;

    [[nodiscard]] MemoryReport report() const noexcept;
    [[nodiscard]] HugepagePolicy policy() const noexcept { return policy_; }

private:
    HugepagePolicy policy_;
    // Live block/byte counts per Backing enumerator, for report().
    std::size_t live_blocks_[kBackingCount] = {};
    std::size_t live_bytes_ = 0;
    bool hugetlb_failed_ = false;
};

/// Flat array of trivially-copyable elements in arena-backed storage. Only
/// the surface Poptrie's pools use: size/capacity, element access, resize
/// (zero-fills growth, like value-initialising std::vector), assign.
template <class T>
class ArenaVector {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ArenaVector memcpys on growth; elements must be trivially copyable");

public:
    ArenaVector() noexcept = default;
    explicit ArenaVector(Arena* arena) noexcept : arena_(arena) {}
    ArenaVector(ArenaVector&& other) noexcept
        : arena_(other.arena_), block_(other.block_), size_(other.size_)
    {
        other.block_ = {};
        other.size_ = 0;
    }
    ArenaVector& operator=(ArenaVector&& other) noexcept
    {
        if (this != &other) {
            release();
            arena_ = other.arena_;
            block_ = other.block_;
            size_ = other.size_;
            other.block_ = {};
            other.size_ = 0;
        }
        return *this;
    }
    ArenaVector(const ArenaVector&) = delete;
    ArenaVector& operator=(const ArenaVector&) = delete;
    ~ArenaVector() { release(); }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] std::size_t capacity() const noexcept
    {
        return block_.bytes / sizeof(T);
    }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    POPTRIE_HOT [[nodiscard]] T* data() noexcept { return static_cast<T*>(block_.ptr); }
    POPTRIE_HOT [[nodiscard]] const T* data() const noexcept
    {
        return static_cast<const T*>(block_.ptr);
    }
    [[nodiscard]] T* begin() noexcept { return data(); }
    [[nodiscard]] T* end() noexcept { return data() + size_; }
    [[nodiscard]] const T* begin() const noexcept { return data(); }
    [[nodiscard]] const T* end() const noexcept { return data() + size_; }
    POPTRIE_HOT [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
    POPTRIE_HOT [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data()[i]; }

    /// Grows or shrinks to `n` elements; new elements are zero bytes (all
    /// pool element types value-initialise to exactly that). Quiescent-point
    /// only when growth is possible — growing remaps the storage.
    void resize(std::size_t n)
    {
        if (n > capacity()) grow_to(n);
        // void* cast: T is trivially copyable (asserted above) but may have
        // default member initialisers, which -Wclass-memaccess objects to;
        // all-zero bytes IS the value-initialised state of every pool type.
        if (n > size_)
            std::memset(static_cast<void*>(data() + size_), 0, (n - size_) * sizeof(T));
        size_ = n;
    }

    /// Replaces the contents with `n` copies of `value`.
    void assign(std::size_t n, const T& value)
    {
        if (n > capacity()) grow_to(n);
        size_ = n;
        T* p = data();
        for (std::size_t i = 0; i < n; ++i) p[i] = value;
    }

private:
    void grow_to(std::size_t n)
    {
        // Geometric growth amortises repeated resize; the mapping is
        // page-granular anyway, so doubling wastes at most one remap's
        // worth of headroom.
        const std::size_t want = std::max(n, capacity() * 2);
        Arena::Block fresh = arena_->map(want * sizeof(T));
        if (size_ != 0) std::memcpy(fresh.ptr, block_.ptr, size_ * sizeof(T));
        if (block_.ptr != nullptr) arena_->unmap(block_);
        block_ = fresh;
    }

    void release() noexcept
    {
        if (arena_ != nullptr && block_.ptr != nullptr) arena_->unmap(block_);
        block_ = {};
        size_ = 0;
    }

    Arena* arena_ = nullptr;
    Arena::Block block_{};
    std::size_t size_ = 0;
};

}  // namespace alloc
