// alloc/arena.cpp — mmap/madvise plumbing behind the arena.
#include "alloc/arena.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace alloc {

namespace {

// Test hook state (see set_force_hugetlb_failure). Plain bool: the hook is
// documented single-threaded and set before any mapping happens.
bool g_force_hugetlb_failure = false;

// MAP_HUGETLB without a size flag uses the default hugepage size, 2 MiB on
// every x86-64/aarch64 distribution we target; mapping lengths must be a
// multiple of it. (A non-2MiB default would only make the explicit attempt
// fail and fall back, never corrupt.)
constexpr std::size_t kHugetlbPageSize = std::size_t{2} << 20;

std::size_t round_up(std::size_t n, std::size_t align)
{
    return (n + align - 1) / align * align;
}

std::size_t base_page_size() noexcept
{
#if defined(__linux__)
    const long ps = sysconf(_SC_PAGESIZE);
    return ps > 0 ? static_cast<std::size_t>(ps) : 4096;
#else
    return 4096;
#endif
}

/// Zeroed heap block — the backing of last resort (and the only one off
/// Linux). calloc gives the same zero-fill contract as anonymous mmap.
Arena::Block heap_block(std::size_t bytes)
{
    void* p = std::calloc(bytes, 1);
    if (p == nullptr) {
        std::fprintf(stderr, "alloc::Arena: out of memory mapping %zu bytes\n", bytes);
        std::abort();
    }
    return {p, bytes, Backing::kHeap};
}

}  // namespace

const char* backing_name(Backing b) noexcept
{
    switch (b) {
        case Backing::kHugetlb: return "hugetlb";
        case Backing::kThpAdvised: return "thp-advised";
        case Backing::kNormalPages: return "normal-pages";
        case Backing::kFileMapped: return "file-mapped";
        case Backing::kHeap: return "heap";
    }
    return "unknown";
}

void set_force_hugetlb_failure(bool force) noexcept { g_force_hugetlb_failure = force; }

std::string thp_status()
{
#if defined(__linux__)
    std::FILE* f = std::fopen("/sys/kernel/mm/transparent_hugepage/enabled", "re");
    if (f == nullptr) return "unavailable";
    char buf[128] = {};
    const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const std::string line(buf, n);
    // The active mode is bracketed: "always [madvise] never".
    const auto open = line.find('[');
    const auto close = line.find(']');
    if (open == std::string::npos || close == std::string::npos || close <= open)
        return "unavailable";
    return line.substr(open + 1, close - open - 1);
#else
    return "unavailable";
#endif
}

Arena::Block Arena::map(std::size_t bytes)
{
    if (bytes == 0) bytes = 1;
#if defined(__linux__)
    // 1. Explicit hugetlb reservation, opt-in only: it either succeeds
    // outright or fails fast (ENOMEM when nr_hugepages is 0 — every CI
    // runner), so the fallback is deterministic and cheap.
    if (policy_ == HugepagePolicy::kOn) {
        const std::size_t len = round_up(bytes, kHugetlbPageSize);
        void* p = MAP_FAILED;
        if (!g_force_hugetlb_failure) {
            p = mmap(nullptr, len, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
        }
        if (p != MAP_FAILED) {
            ++live_blocks_[static_cast<int>(Backing::kHugetlb)];
            live_bytes_ += len;
            return {p, len, Backing::kHugetlb};
        }
        hugetlb_failed_ = true;
    }

    // 2. Anonymous mapping; unless hugepages are off, advise the kernel to
    // back it with THP. madvise failing (old kernel, THP "never") just
    // leaves base pages — correctness is unaffected either way.
    const std::size_t len = round_up(bytes, base_page_size());
    void* p = mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
        Backing backing = Backing::kNormalPages;
#ifdef MADV_HUGEPAGE
        if (policy_ != HugepagePolicy::kOff && madvise(p, len, MADV_HUGEPAGE) == 0)
            backing = Backing::kThpAdvised;
#endif
        ++live_blocks_[static_cast<int>(backing)];
        live_bytes_ += len;
        return {p, len, backing};
    }
#endif  // __linux__

    Block b = heap_block(bytes);
    ++live_blocks_[static_cast<int>(Backing::kHeap)];
    live_bytes_ += b.bytes;
    return b;
}

Arena::Block Arena::map_file(const std::string& path) noexcept
{
#if defined(__linux__)
    const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return {};
    struct stat st{};
    if (fstat(fd, &st) != 0 || st.st_size <= 0) {
        close(fd);
        return {};
    }
    const auto len = static_cast<std::size_t>(st.st_size);
    // Read-only private mapping: never written, so the page-cache pages are
    // shared with every other process mapping the same image.
    void* p = mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    close(fd);
    if (p == MAP_FAILED) return {};
    ++live_blocks_[static_cast<int>(Backing::kFileMapped)];
    live_bytes_ += len;
    return {p, len, Backing::kFileMapped};
#else
    (void)path;
    return {};
#endif
}

void Arena::unmap(Block& block) noexcept
{
    if (block.ptr == nullptr) return;
    assert(live_blocks_[static_cast<int>(block.backing)] > 0);
    --live_blocks_[static_cast<int>(block.backing)];
    live_bytes_ -= block.bytes;
    if (block.backing == Backing::kHeap) {
        std::free(block.ptr);
    } else {
#if defined(__linux__)
        munmap(block.ptr, block.bytes);
#endif
    }
    block = {};
}

MemoryReport Arena::report() const noexcept
{
    MemoryReport r;
    r.hugetlb_requested = policy_ == HugepagePolicy::kOn;
    r.hugetlb_failed = hugetlb_failed_;
    r.bytes_reserved = live_bytes_;
    // Weakest live backing: the conservative answer to "what pages is this
    // FIB on". With nothing mapped yet, report what a mapping would get.
    r.backing = Backing::kHugetlb;
    bool any = false;
    for (int b = 0; b < kBackingCount; ++b) {
        if (live_blocks_[b] != 0) {
            r.backing = static_cast<Backing>(b);
            any = true;
            break;
        }
    }
    if (!any) {
#if defined(__linux__)
        r.backing = Backing::kNormalPages;
#else
        r.backing = Backing::kHeap;
#endif
    }
    r.page_size =
        r.backing == Backing::kHugetlb ? kHugetlbPageSize : base_page_size();
    return r;
}

}  // namespace alloc
