// snapshot/snapshot.hpp — versioned on-disk FIB images and warm start.
//
// The compacted DFS pre-order layout (Poptrie::compact, DESIGN.md §8) is a
// pure function of the trie, so the whole FIB — node pool, leaf pool, direct
// array, root metadata — serializes as raw arenas and maps back byte for
// byte. This module is that round trip:
//
//   * serialize()/save()  — writer: at a quiescent point, copy the touched
//     extent of the pools (allocator high-water marks) plus a Config echo,
//     per-section and whole-image FNV-1a checksums, and a provenance stamp
//     (benchkit git_sha/build fingerprint) into a versioned image;
//   * SnapshotFib<Addr>   — loader: validate the header and checksums, then
//     either mmap the file read-only (Backing::kFileMapped — pages shared
//     across every process mapping the same image) or copy it into arena
//     pages honoring the hugepage policy; serve lookups over the immutable
//     arrays with zero writer-side machinery — no EBR domain, no buddy
//     allocators, no pool growth, no atomics;
//   * verify_image()      — structural auditor over a loaded image (bounds,
//     leafvec/vector consistency, reachability), backing poptrie_fsck
//     --verify-image.
//
// Versioning/compat policy (DESIGN.md §11): images carry a format version
// and an endianness tag; a loader accepts exactly its own version and host
// byte order, and rejects anything else up front — images are a warm-start
// and replication format, not an archival one. Any layout change bumps
// kFormatVersion.
//
// Error model: ImageIoError for filesystem problems (missing file, short
// write), ImageError for malformed or corrupted images (bad magic/version,
// checksum mismatch, truncation, layout violations). Tools map them to the
// repo-wide exit-code contract: 2 for input errors, 1 for violations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "alloc/arena.hpp"
#include "netbase/bits.hpp"
#include "poptrie/config.hpp"
#include "poptrie/lanes.hpp"
#include "poptrie/lookup_pipelined.ipp"
#include "poptrie/poptrie.hpp"
#include "sync/annotations.hpp"

namespace snapshot {

/// Malformed or corrupted image: bad magic/version/endianness, checksum
/// mismatch, truncation, inconsistent section layout. Exit 1 in tools.
class ImageError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Filesystem-level failure: file missing/unreadable, short write. Exit 2.
class ImageIoError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

inline constexpr char kMagic[8] = {'P', 'O', 'P', 'T', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 2;
/// Written as a native uint32: a loader on the other byte order reads
/// 0x04030201 and rejects the image instead of mis-decoding it.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
/// Sections start at multiples of this (cache-line aligned; also satisfies
/// every element type's alignment).
inline constexpr std::size_t kSectionAlign = 64;

/// FNV-1a over `n` bytes, seeded so section checksums can be chained.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t n,
                                    std::uint64_t seed = 0xCBF29CE484222325ull) noexcept;

/// One serialized pool: where it sits in the image and its own checksum.
struct SectionDesc {
    std::uint64_t offset = 0;    ///< from image start, kSectionAlign-aligned
    std::uint64_t bytes = 0;     ///< payload bytes (element count × size)
    std::uint64_t checksum = 0;  ///< fnv1a64 of the payload
};

/// The fixed-size image header (DESIGN.md §11 has the byte-layout table).
/// Everything a loader must distrust is here: identity (magic/version/
/// endianness), geometry (counts, section extents, element sizes), the
/// Config echo, provenance, and two checksums — one over the header itself
/// (this field zeroed), one over everything after it.
struct ImageHeader {
    char magic[8] = {};
    std::uint32_t format_version = 0;
    std::uint32_t endian_tag = 0;
    std::uint32_t header_bytes = 0;  ///< sizeof(ImageHeader) at write time
    std::uint32_t family_width = 0;  ///< Addr::kWidth: 32 or 128
    std::uint32_t node_bytes = 0;    ///< sizeof(Node) — layout drift guard
    std::uint32_t leaf_bytes = 0;    ///< sizeof(NextHop)
    // Config echo (poptrie::Config, hugepages as the policy enumerator).
    std::uint8_t direct_bits = 0;
    std::uint8_t leaf_compression = 0;
    std::uint8_t route_aggregation = 0;
    std::uint8_t pool_headroom_log2 = 0;
    std::uint8_t hugepage_policy = 0;
    std::uint8_t leaf_dict_enabled = 0;  ///< Config::leaf_dict (v2)
    std::uint8_t reserved8[2] = {};
    std::uint32_t root_index = 0;  ///< published root when direct_bits == 0
    std::uint32_t reserved32 = 0;
    std::uint64_t node_count = 0;    ///< node slots serialized ([0, high water))
    std::uint64_t leaf_count = 0;    ///< leaf slots serialized
    std::uint64_t direct_count = 0;  ///< direct slots (2^direct_bits or 0)
    std::uint64_t inode_live = 0;    ///< live internal nodes (stats echo)
    std::uint64_t leaf_live = 0;     ///< live leaf slots (stats echo)
    std::uint64_t leaf8_count = 0;      ///< dict-coded leaf slots serialized (v2)
    std::uint64_t leaf_dict_count = 0;  ///< dictionary entries (≤ 256, v2)
    std::uint64_t total_bytes = 0;      ///< whole image, header included
    SectionDesc nodes;
    SectionDesc leaves;
    SectionDesc direct;
    SectionDesc leaves8;    ///< 8-bit leaf codes (v2; empty unless dict-encoded)
    SectionDesc leaf_dict;  ///< dictionary next-hop values (v2)
    char git_sha[24] = {};     ///< benchkit provenance, NUL-padded
    char build_type[16] = {};  ///< CMake build type at write time
    std::uint64_t payload_checksum = 0;  ///< fnv1a64 over [header_bytes, total_bytes)
    std::uint64_t header_checksum = 0;   ///< fnv1a64 over the header, this field 0
};
static_assert(std::is_trivially_copyable_v<ImageHeader>);
static_assert(sizeof(ImageHeader) == 288, "bump kFormatVersion when the header grows");

/// The single point of access to Poptrie internals for the image writer
/// (declared a friend there, exactly like analysis::AuditAccess). The pool
/// accessors are POPTRIE_NO_TSA: by contract the writer runs at a quiescent
/// point (serialize() REQUIRES the capability), a discipline the callers
/// uphold rather than the type system.
struct SnapshotAccess {
    template <class Addr>
    using PT = poptrie::Poptrie<Addr>;

    template <class Addr>
    [[nodiscard]] static const auto& nodes(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.nodes_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaves(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaves8(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaves8_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& leaf_dict(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.leaf_dict_;
    }
    template <class Addr>
    [[nodiscard]] static const auto& direct(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.direct_;
    }
    template <class Addr>
    [[nodiscard]] static std::uint32_t root(const PT<Addr>& p) noexcept POPTRIE_NO_TSA
    {
        return p.root_;
    }
    template <class Addr>
    [[nodiscard]] static const alloc::BuddyAllocator& node_alloc(const PT<Addr>& p) noexcept
        POPTRIE_NO_TSA
    {
        return *p.node_alloc_;
    }
    template <class Addr>
    [[nodiscard]] static const alloc::BuddyAllocator& leaf_alloc(const PT<Addr>& p) noexcept
        POPTRIE_NO_TSA
    {
        return *p.leaf_alloc_;
    }
    template <class Addr>
    [[nodiscard]] static std::size_t inode_count(const PT<Addr>& p) noexcept
    {
        return p.inode_count_;
    }
    template <class Addr>
    [[nodiscard]] static std::size_t leaf_count(const PT<Addr>& p) noexcept
    {
        return p.leaf_count_;
    }
};

/// Serializes `fib` into an in-memory image: header + node/leaf/direct
/// sections at aligned offsets, checksums filled in. Quiescent-point only —
/// the pools are read in place, so no update and no pool replacement may run
/// concurrently (the capability requirement is the §3.5 contract, not a
/// convention).
template <class Addr>
[[nodiscard]] std::vector<std::uint8_t> serialize(const poptrie::Poptrie<Addr>& fib)
    POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr);

/// serialize() + atomic file write (temp file in place, then rename), so a
/// crash mid-save never leaves a half-written image under the target name.
/// Throws ImageIoError when the filesystem refuses.
template <class Addr>
void save(const poptrie::Poptrie<Addr>& fib, const std::string& path)
    POPTRIE_REQUIRES(psync::cap::quiescent, psync::cap::ebr);

/// Reads and validates just the header of an image file: magic, version,
/// endianness, header size, header checksum. Lets tools dispatch on
/// family_width before committing to a full load. Throws ImageIoError (file
/// unreadable) or ImageError (not a valid image).
[[nodiscard]] ImageHeader read_header(const std::string& path);

/// How SnapshotFib places the image in memory.
struct LoadOptions {
    enum class Placement {
        kAuto,  ///< mmap the file; fall back to copy-in if mapping fails
        kMap,   ///< same as kAuto (mapping is best-effort by design)
        kCopy,  ///< always copy into arena pages (hugepage policy applies)
    };
    Placement placement = Placement::kAuto;
    /// Arena policy for the copy-in path (mmap'd files cannot be hugepage-
    /// backed, so the policy is moot under kMap placement).
    alloc::HugepagePolicy hugepages = alloc::HugepagePolicy::kAuto;
};

/// A read-only FIB served straight out of a validated snapshot image.
/// Immutable after construction: plain loads, no EBR, no allocators, and
/// therefore trivially shareable across threads (and, under mmap placement,
/// across processes). The lookup algorithm is the paper's, identical to
/// Poptrie::lookup_impl minus the publication atomics an updater would need.
template <class Addr>
class SnapshotFib {
public:
    using addr_type = Addr;
    using value_type = typename Addr::value_type;
    using NextHop = rib::NextHop;
    using Node = typename poptrie::Poptrie<Addr>::Node;

    static constexpr unsigned kStride = poptrie::Poptrie<Addr>::kStride;
    static constexpr unsigned kWidth = Addr::kWidth;
    static constexpr std::uint32_t kDirectLeafBit = poptrie::Poptrie<Addr>::kDirectLeafBit;

    /// Loads and validates an image file. ImageIoError when the file cannot
    /// be read at all; ImageError when it is not a valid, intact image for
    /// this address family.
    [[nodiscard]] static SnapshotFib load_file(const std::string& path,
                                               const LoadOptions& opt = {});

    /// Loads from an in-memory image (always copy-in). Same validation.
    [[nodiscard]] static SnapshotFib load_buffer(const std::uint8_t* data, std::size_t size,
                                                 const LoadOptions& opt = {});

    SnapshotFib(SnapshotFib&& other) noexcept
        : hdr_(other.hdr_),
          arena_(std::move(other.arena_)),
          blocks_(std::move(other.blocks_)),
          nodes_(other.nodes_),
          leaves_(other.leaves_),
          direct_(other.direct_),
          leaves8_(other.leaves8_),
          leaf_dict_(other.leaf_dict_),
          root_(other.root_),
          direct_bits_(other.direct_bits_),
          leaf_compression_(other.leaf_compression_),
          lane_path_(other.lane_path_)
    {
        other.nodes_ = nullptr;
        other.leaves_ = nullptr;
        other.direct_ = nullptr;
        other.leaves8_ = nullptr;
        other.leaf_dict_ = nullptr;
    }
    SnapshotFib& operator=(SnapshotFib&& other) noexcept
    {
        if (this != &other) {
            release();
            hdr_ = other.hdr_;
            arena_ = std::move(other.arena_);
            blocks_ = std::move(other.blocks_);
            nodes_ = other.nodes_;
            leaves_ = other.leaves_;
            direct_ = other.direct_;
            leaves8_ = other.leaves8_;
            leaf_dict_ = other.leaf_dict_;
            root_ = other.root_;
            direct_bits_ = other.direct_bits_;
            leaf_compression_ = other.leaf_compression_;
            lane_path_ = other.lane_path_;
            other.nodes_ = nullptr;
            other.leaves_ = nullptr;
            other.direct_ = nullptr;
            other.leaves8_ = nullptr;
            other.leaf_dict_ = nullptr;
        }
        return *this;
    }
    SnapshotFib(const SnapshotFib&) = delete;
    SnapshotFib& operator=(const SnapshotFib&) = delete;
    ~SnapshotFib() { release(); }

    /// Longest-prefix-match lookup; kNoRoute on miss. One configuration
    /// branch, then the same walk as the live trie (the shared scalar
    /// reference in lookup_pipelined.ipp, over the plain-load view).
    POPTRIE_HOT [[nodiscard]] NextHop lookup(Addr addr) const noexcept
    {
        const auto view = plain_view();
        return leaf_compression_
                   ? poptrie::batch::lookup_one<true>(view, addr.value(), direct_bits_)
                   : poptrie::batch::lookup_one<false>(view, addr.value(), direct_bits_);
    }

    /// Batched lookup: the shared pipelined state machine from
    /// lookup_pipelined.ipp — and, for IPv4, the SIMD lane paths behind the
    /// runtime dispatch in poptrie/lanes.hpp (lane_path() says which one
    /// serves; POPTRIE_FORCE_LANES was honored at load time). No capability
    /// requirement and no atomics: the arrays are immutable, which is also
    /// what makes the plain-load SIMD gathers sound here.
    POPTRIE_HOT void lookup_batch(const value_type* keys, NextHop* out,
                                  std::size_t n) const noexcept
    {
        if constexpr (kWidth == 32) {
            poptrie::lanes::run(lane_path_, plain_view(), keys, out, n);
        } else {
            // IPv6: no SIMD formulation yet (128-bit keys need a different
            // chunk pipeline); the interleaved walk still hides the misses.
            const auto view = plain_view();
            if (leaf_compression_)
                poptrie::batch::lookup_batch_pipelined<true, 8>(view, keys, out, n,
                                                                direct_bits_);
            else
                poptrie::batch::lookup_batch_pipelined<false, 8>(view, keys, out, n,
                                                                 direct_bits_);
        }
    }

    /// The lane path lookup_batch serves IPv4 bursts with. Resolved via
    /// lanes::select() when the image is loaded; tests and tools may pin it.
    [[nodiscard]] poptrie::lanes::LanePath lane_path() const noexcept
    {
        return lane_path_;
    }
    /// Pins the batch lane path. The caller owns the select() contract:
    /// pass only a path that is compiled in and CPU-supported.
    void set_lane_path(poptrie::lanes::LanePath path) noexcept { lane_path_ = path; }

    [[nodiscard]] const ImageHeader& header() const noexcept { return hdr_; }
    /// The Config the FIB was built with, reconstructed from the echo.
    [[nodiscard]] poptrie::Config config() const noexcept;
    /// Backing of the image pages: kFileMapped under mmap placement, the
    /// arena's usual report (hugetlb/thp/normal/heap) under copy-in.
    [[nodiscard]] alloc::MemoryReport memory_report() const noexcept
    {
        return arena_->report();
    }
    [[nodiscard]] std::uint64_t node_count() const noexcept { return hdr_.node_count; }
    [[nodiscard]] std::uint64_t leaf_count() const noexcept { return hdr_.leaf_count; }
    [[nodiscard]] std::uint64_t direct_slots() const noexcept { return hdr_.direct_count; }
    [[nodiscard]] std::uint64_t image_bytes() const noexcept { return hdr_.total_bytes; }

    [[nodiscard]] std::uint64_t leaf8_count() const noexcept { return hdr_.leaf8_count; }
    [[nodiscard]] std::uint64_t leaf_dict_count() const noexcept
    {
        return hdr_.leaf_dict_count;
    }

    // Raw section access for the structural verifier (verify_image).
    [[nodiscard]] const Node* nodes_data() const noexcept { return nodes_; }
    [[nodiscard]] const NextHop* leaves_data() const noexcept { return leaves_; }
    [[nodiscard]] const std::uint32_t* direct_data() const noexcept { return direct_; }
    [[nodiscard]] const std::uint8_t* leaves8_data() const noexcept { return leaves8_; }
    [[nodiscard]] const NextHop* leaf_dict_data() const noexcept { return leaf_dict_; }

private:
    SnapshotFib() = default;

    /// Validates `base[0, size)` as an image for this family and points the
    /// section pointers into it. Throws ImageError; never takes ownership.
    void attach(const std::uint8_t* base, std::size_t size);
    void release() noexcept
    {
        if (arena_ != nullptr)
            for (auto& b : blocks_) arena_->unmap(b);
        blocks_.clear();
        nodes_ = nullptr;
        leaves_ = nullptr;
        direct_ = nullptr;
        leaves8_ = nullptr;
        leaf_dict_ = nullptr;
    }

    /// The plain-load view the shared walk (lookup_pipelined.ipp) and the
    /// SIMD kernels read through. Exact, not an approximation: a loaded
    /// image has no writer side at all.
    POPTRIE_HOT [[nodiscard]] poptrie::batch::PlainView<value_type, Node>
    plain_view() const noexcept
    {
        return {nodes_,       leaves_,           direct_,  root_,
                direct_bits_, leaf_compression_, leaves8_, leaf_dict_};
    }

    ImageHeader hdr_{};
    // The arena accounts for the image pages (one file mapping or one
    // copied block) so memory_report() distinguishes built vs restored FIBs.
    std::unique_ptr<alloc::Arena> arena_;
    std::vector<alloc::Arena::Block> blocks_;
    const Node* nodes_ = nullptr;
    const NextHop* leaves_ = nullptr;
    const std::uint32_t* direct_ = nullptr;
    // v2 dict-coded leaf sections; null pointers are fine when the image
    // carries no tagged runs (the view branches on the base0 tag first).
    const std::uint8_t* leaves8_ = nullptr;
    const NextHop* leaf_dict_ = nullptr;
    std::uint32_t root_ = 0;
    unsigned direct_bits_ = 0;
    bool leaf_compression_ = true;
    // Resolved once per load (cpuid + POPTRIE_FORCE_LANES); IPv6 images
    // carry it too but always serve the pipelined walk.
    poptrie::lanes::LanePath lane_path_ = poptrie::lanes::select().path;
};

using SnapshotFib4 = SnapshotFib<netbase::Ipv4Addr>;
using SnapshotFib6 = SnapshotFib<netbase::Ipv6Addr>;

extern template class SnapshotFib<netbase::Ipv4Addr>;
extern template class SnapshotFib<netbase::Ipv6Addr>;

/// The structural verifier's outcome (poptrie_fsck --verify-image).
struct VerifyReport {
    std::vector<std::string> violations;
    std::size_t nodes_checked = 0;
    std::size_t leaves_checked = 0;
    std::size_t direct_slots_checked = 0;
    [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
    [[nodiscard]] std::string summary() const;
};

/// Walks the reachable structure of a loaded image and checks the paper's
/// invariants image-side: every direct slot either a tagged leaf with a
/// representable next hop or an in-bounds node index; every child/leaf run
/// inside its section; leafvec consistent with vector under leaf
/// compression; no node reachable twice; depth bounded by the address
/// width. (Header and checksum validation already happened at load.)
template <class Addr>
[[nodiscard]] VerifyReport verify_image(const SnapshotFib<Addr>& fib);

extern template VerifyReport verify_image(const SnapshotFib<netbase::Ipv4Addr>&);
extern template VerifyReport verify_image(const SnapshotFib<netbase::Ipv6Addr>&);

extern template std::vector<std::uint8_t> serialize(
    const poptrie::Poptrie<netbase::Ipv4Addr>&);
extern template std::vector<std::uint8_t> serialize(
    const poptrie::Poptrie<netbase::Ipv6Addr>&);
extern template void save(const poptrie::Poptrie<netbase::Ipv4Addr>&, const std::string&);
extern template void save(const poptrie::Poptrie<netbase::Ipv6Addr>&, const std::string&);

}  // namespace snapshot
