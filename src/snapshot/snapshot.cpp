// snapshot/snapshot.cpp — image writer, validating loader, and the
// image-side structural verifier. See snapshot.hpp for the format contract.
#include "snapshot/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "alloc/buddy_allocator.hpp"
#include "benchkit/provenance.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"

namespace snapshot {

namespace {

std::uint64_t align_up(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) / align * align;
}

/// NUL-padded copy of a provenance string into a fixed header field;
/// truncates silently (the stamp is diagnostic, not load-bearing).
void copy_stamp(char* dst, std::size_t dst_len, std::string_view src)
{
    std::memset(dst, 0, dst_len);
    std::memcpy(dst, src.data(), std::min(src.size(), dst_len - 1));
}

/// Identity checks shared by read_header() and the full loader: everything
/// that must hold before any other header field may be trusted.
void validate_header_common(const ImageHeader& hdr)
{
    if (std::memcmp(hdr.magic, kMagic, sizeof(kMagic)) != 0)
        throw ImageError("not a poptrie snapshot image (bad magic)");
    if (hdr.format_version != kFormatVersion)
        throw ImageError("unsupported snapshot format version " +
                         std::to_string(hdr.format_version) + " (this build reads version " +
                         std::to_string(kFormatVersion) + ")");
    if (hdr.endian_tag != kEndianTag)
        throw ImageError("snapshot image written on a different byte order");
    if (hdr.header_bytes != sizeof(ImageHeader))
        throw ImageError("snapshot header size mismatch: image says " +
                         std::to_string(hdr.header_bytes) + ", this build expects " +
                         std::to_string(sizeof(ImageHeader)));
    ImageHeader copy = hdr;
    copy.header_checksum = 0;
    const std::uint64_t want = fnv1a64(&copy, sizeof(copy));
    if (want != hdr.header_checksum)
        throw ImageError("snapshot header checksum mismatch");
}

/// One section's geometry against the image extent; `elt` is the element
/// size, `count` the element count the header claims for it.
void validate_section(const SectionDesc& s, std::uint64_t count, std::uint64_t elt,
                      std::uint64_t min_offset, std::uint64_t total, const char* what)
{
    // Counts are bounded first so count*elt below cannot overflow: pool
    // indices are 32-bit, so anything larger is corrupt regardless.
    if (count > std::numeric_limits<std::uint32_t>::max())
        throw ImageError(std::string(what) + " section count out of range");
    if (s.bytes != count * elt)
        throw ImageError(std::string(what) + " section size inconsistent with its count");
    if (s.offset % kSectionAlign != 0)
        throw ImageError(std::string(what) + " section misaligned");
    if (s.offset < min_offset || s.offset > total || s.bytes > total - s.offset)
        throw ImageError(std::string(what) + " section out of image bounds");
}

void check_section_sum(const SectionDesc& s, const std::uint8_t* base, const char* what)
{
    if (fnv1a64(base + s.offset, s.bytes) != s.checksum)
        throw ImageError(std::string(what) + " section checksum mismatch");
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t n, std::uint64_t seed) noexcept
{
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string VerifyReport::summary() const
{
    std::string out = "verify-image: " + std::to_string(nodes_checked) + " nodes, " +
                      std::to_string(leaves_checked) + " leaves, " +
                      std::to_string(direct_slots_checked) + " direct slots; " +
                      std::to_string(violations.size()) + " violation(s)\n";
    for (const auto& v : violations) out += "  " + v + "\n";
    return out;
}

// ---------------------------------------------------------------------------
// Writer

template <class Addr>
std::vector<std::uint8_t> serialize(const poptrie::Poptrie<Addr>& fib)
{
    using PT = poptrie::Poptrie<Addr>;
    using Node = typename PT::Node;
    const poptrie::Config& cfg = fib.config();
    const auto& nodes = SnapshotAccess::nodes(fib);
    const auto& leaves = SnapshotAccess::leaves(fib);
    const auto& direct = SnapshotAccess::direct(fib);
    const auto& leaves8 = SnapshotAccess::leaves8(fib);
    const auto& leaf_dict = SnapshotAccess::leaf_dict(fib);
    // The touched extent of each pool: every reachable index is below the
    // allocator's high-water mark, so nothing past it needs to survive. The
    // dict-coded array has no allocator — its full extent is the compaction
    // bump cursor (tagged base0 offsets are never reused, so every reachable
    // one is below leaves8.size()).
    const std::uint64_t node_count = SnapshotAccess::node_alloc(fib).high_water();
    const std::uint64_t leaf_count = SnapshotAccess::leaf_alloc(fib).high_water();
    const std::uint64_t direct_count = direct.size();
    const std::uint64_t leaf8_count = leaves8.size();
    const std::uint64_t leaf_dict_count = leaf_dict.size();

    ImageHeader hdr;
    std::memcpy(hdr.magic, kMagic, sizeof(kMagic));
    hdr.format_version = kFormatVersion;
    hdr.endian_tag = kEndianTag;
    hdr.header_bytes = sizeof(ImageHeader);
    hdr.family_width = Addr::kWidth;
    hdr.node_bytes = sizeof(Node);
    hdr.leaf_bytes = sizeof(rib::NextHop);
    hdr.direct_bits = static_cast<std::uint8_t>(cfg.direct_bits);
    hdr.leaf_compression = cfg.leaf_compression ? 1 : 0;
    hdr.route_aggregation = cfg.route_aggregation ? 1 : 0;
    hdr.pool_headroom_log2 = static_cast<std::uint8_t>(cfg.pool_headroom_log2);
    hdr.hugepage_policy = static_cast<std::uint8_t>(cfg.hugepages);
    hdr.leaf_dict_enabled = cfg.leaf_dict ? 1 : 0;
    hdr.root_index = SnapshotAccess::root(fib);
    hdr.node_count = node_count;
    hdr.leaf_count = leaf_count;
    hdr.direct_count = direct_count;
    hdr.leaf8_count = leaf8_count;
    hdr.leaf_dict_count = leaf_dict_count;
    hdr.inode_live = SnapshotAccess::inode_count(fib);
    hdr.leaf_live = SnapshotAccess::leaf_count(fib);
    const benchkit::Provenance prov = benchkit::provenance();
    copy_stamp(hdr.git_sha, sizeof(hdr.git_sha), prov.git_sha);
    copy_stamp(hdr.build_type, sizeof(hdr.build_type), prov.build_type);

    const std::uint64_t nodes_off = align_up(sizeof(ImageHeader), kSectionAlign);
    const std::uint64_t nodes_bytes = node_count * sizeof(Node);
    const std::uint64_t leaves_off = align_up(nodes_off + nodes_bytes, kSectionAlign);
    const std::uint64_t leaves_bytes = leaf_count * sizeof(rib::NextHop);
    const std::uint64_t direct_off = align_up(leaves_off + leaves_bytes, kSectionAlign);
    const std::uint64_t direct_bytes = direct_count * sizeof(std::uint32_t);
    const std::uint64_t leaves8_off = align_up(direct_off + direct_bytes, kSectionAlign);
    const std::uint64_t leaves8_bytes = leaf8_count * sizeof(std::uint8_t);
    const std::uint64_t dict_off = align_up(leaves8_off + leaves8_bytes, kSectionAlign);
    const std::uint64_t dict_bytes = leaf_dict_count * sizeof(rib::NextHop);
    hdr.total_bytes = dict_off + dict_bytes;

    std::vector<std::uint8_t> out(static_cast<std::size_t>(hdr.total_bytes), 0);
    if (nodes_bytes != 0)
        std::memcpy(out.data() + nodes_off, nodes.data(), static_cast<std::size_t>(nodes_bytes));
    if (leaves_bytes != 0)
        std::memcpy(out.data() + leaves_off, leaves.data(),
                    static_cast<std::size_t>(leaves_bytes));
    if (direct_bytes != 0)
        std::memcpy(out.data() + direct_off, direct.data(),
                    static_cast<std::size_t>(direct_bytes));
    if (leaves8_bytes != 0)
        std::memcpy(out.data() + leaves8_off, leaves8.data(),
                    static_cast<std::size_t>(leaves8_bytes));
    if (dict_bytes != 0)
        std::memcpy(out.data() + dict_off, leaf_dict.data(),
                    static_cast<std::size_t>(dict_bytes));
    hdr.nodes = {nodes_off, nodes_bytes, fnv1a64(out.data() + nodes_off, nodes_bytes)};
    hdr.leaves = {leaves_off, leaves_bytes, fnv1a64(out.data() + leaves_off, leaves_bytes)};
    hdr.direct = {direct_off, direct_bytes, fnv1a64(out.data() + direct_off, direct_bytes)};
    hdr.leaves8 = {leaves8_off, leaves8_bytes,
                   fnv1a64(out.data() + leaves8_off, leaves8_bytes)};
    hdr.leaf_dict = {dict_off, dict_bytes, fnv1a64(out.data() + dict_off, dict_bytes)};
    hdr.payload_checksum = fnv1a64(out.data() + hdr.header_bytes,
                                   static_cast<std::size_t>(hdr.total_bytes) - hdr.header_bytes);
    hdr.header_checksum = fnv1a64(&hdr, sizeof(hdr));
    std::memcpy(out.data(), &hdr, sizeof(hdr));
    return out;
}

template <class Addr>
void save(const poptrie::Poptrie<Addr>& fib, const std::string& path)
{
    const std::vector<std::uint8_t> image = serialize(fib);
    // Write-then-rename: a crash mid-save leaves the old image (or nothing)
    // under the target name, never a torn file.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            throw ImageIoError("snapshot: cannot open '" + tmp + "' for writing");
        f.write(reinterpret_cast<const char*>(image.data()),
                static_cast<std::streamsize>(image.size()));
        f.flush();
        if (!f) {
            std::remove(tmp.c_str());
            throw ImageIoError("snapshot: short write to '" + tmp + "'");
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw ImageIoError("snapshot: cannot rename '" + tmp + "' to '" + path + "'");
    }
}

// ---------------------------------------------------------------------------
// Loader

ImageHeader read_header(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f) throw ImageIoError("snapshot: cannot open '" + path + "'");
    ImageHeader hdr;
    f.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
    if (f.gcount() != static_cast<std::streamsize>(sizeof(hdr)))
        throw ImageError("truncated snapshot image: shorter than its header");
    validate_header_common(hdr);
    return hdr;
}

template <class Addr>
void SnapshotFib<Addr>::attach(const std::uint8_t* base, std::size_t size)
{
    if (size < sizeof(ImageHeader))
        throw ImageError("truncated snapshot image: shorter than its header");
    std::memcpy(&hdr_, base, sizeof(hdr_));
    validate_header_common(hdr_);
    if (hdr_.family_width != Addr::kWidth)
        throw ImageError("address family mismatch: image is " +
                         std::to_string(hdr_.family_width) + "-bit, loader expects " +
                         std::to_string(Addr::kWidth) + "-bit");
    if (hdr_.node_bytes != sizeof(Node) || hdr_.leaf_bytes != sizeof(NextHop))
        throw ImageError("node/leaf element layout mismatch");
    if (hdr_.total_bytes != size)
        throw ImageError("truncated snapshot image: " + std::to_string(size) +
                         " bytes on disk, header says " + std::to_string(hdr_.total_bytes));
    if (hdr_.hugepage_policy > static_cast<std::uint8_t>(alloc::HugepagePolicy::kOff))
        throw ImageError("invalid hugepage policy in configuration echo");
    if (!poptrie::valid_config(config(), Addr::kWidth))
        throw ImageError("invalid configuration echo");
    const std::uint64_t want_direct =
        hdr_.direct_bits != 0 ? std::uint64_t{1} << hdr_.direct_bits : 0;
    if (hdr_.direct_count != want_direct)
        throw ImageError("direct section count inconsistent with direct_bits");
    validate_section(hdr_.nodes, hdr_.node_count, sizeof(Node), hdr_.header_bytes,
                     hdr_.total_bytes, "node");
    validate_section(hdr_.leaves, hdr_.leaf_count, sizeof(NextHop), hdr_.header_bytes,
                     hdr_.total_bytes, "leaf");
    validate_section(hdr_.direct, hdr_.direct_count, sizeof(std::uint32_t), hdr_.header_bytes,
                     hdr_.total_bytes, "direct");
    validate_section(hdr_.leaves8, hdr_.leaf8_count, sizeof(std::uint8_t), hdr_.header_bytes,
                     hdr_.total_bytes, "leaf8");
    validate_section(hdr_.leaf_dict, hdr_.leaf_dict_count, sizeof(NextHop), hdr_.header_bytes,
                     hdr_.total_bytes, "leaf-dict");
    // A dictionary past the 8-bit code space, or codes with no dictionary to
    // decode through, cannot have come from the writer.
    if (hdr_.leaf_dict_count > 256)
        throw ImageError("leaf dictionary exceeds the 8-bit code space");
    if (hdr_.leaf8_count != 0 && hdr_.leaf_dict_count == 0)
        throw ImageError("dict-coded leaves present but the dictionary is empty");
    // Sections must be disjoint and in writer order; anything else is a
    // forged layout even if each section is individually in bounds.
    if (hdr_.nodes.offset + hdr_.nodes.bytes > hdr_.leaves.offset ||
        hdr_.leaves.offset + hdr_.leaves.bytes > hdr_.direct.offset ||
        hdr_.direct.offset + hdr_.direct.bytes > hdr_.leaves8.offset ||
        hdr_.leaves8.offset + hdr_.leaves8.bytes > hdr_.leaf_dict.offset)
        throw ImageError("snapshot sections overlap");
    if (hdr_.direct_bits == 0 &&
        (hdr_.node_count == 0 || hdr_.root_index >= hdr_.node_count))
        throw ImageError("root index out of range");
    if (fnv1a64(base + hdr_.header_bytes, size - hdr_.header_bytes) != hdr_.payload_checksum)
        throw ImageError("snapshot image checksum mismatch");
    check_section_sum(hdr_.nodes, base, "node");
    check_section_sum(hdr_.leaves, base, "leaf");
    check_section_sum(hdr_.direct, base, "direct");
    check_section_sum(hdr_.leaves8, base, "leaf8");
    check_section_sum(hdr_.leaf_dict, base, "leaf-dict");

    nodes_ = reinterpret_cast<const Node*>(base + hdr_.nodes.offset);
    leaves_ = reinterpret_cast<const NextHop*>(base + hdr_.leaves.offset);
    direct_ = reinterpret_cast<const std::uint32_t*>(base + hdr_.direct.offset);
    leaves8_ = base + hdr_.leaves8.offset;
    leaf_dict_ = reinterpret_cast<const NextHop*>(base + hdr_.leaf_dict.offset);
    root_ = hdr_.root_index;
    direct_bits_ = hdr_.direct_bits;
    leaf_compression_ = hdr_.leaf_compression != 0;
}

template <class Addr>
SnapshotFib<Addr> SnapshotFib<Addr>::load_file(const std::string& path, const LoadOptions& opt)
{
    SnapshotFib fib;
    fib.arena_ = std::make_unique<alloc::Arena>(opt.hugepages);
    if (opt.placement != LoadOptions::Placement::kCopy) {
        alloc::Arena::Block m = fib.arena_->map_file(path);
        if (m.ptr != nullptr) {
            fib.blocks_.push_back(m);
            // Validation errors propagate (a corrupt image must be reported,
            // not silently re-read); only a failed *mapping* falls back.
            fib.attach(static_cast<const std::uint8_t*>(m.ptr), m.bytes);
            return fib;
        }
    }
    std::ifstream f(path, std::ios::binary);
    if (!f) throw ImageIoError("snapshot: cannot open '" + path + "'");
    f.seekg(0, std::ios::end);
    const std::streamoff end = f.tellg();
    f.seekg(0, std::ios::beg);
    if (end <= 0) throw ImageError("truncated snapshot image: empty file");
    const auto size = static_cast<std::size_t>(end);
    alloc::Arena::Block b = fib.arena_->map(size);
    fib.blocks_.push_back(b);
    f.read(static_cast<char*>(b.ptr), static_cast<std::streamsize>(size));
    if (f.gcount() != static_cast<std::streamsize>(size))
        throw ImageIoError("snapshot: short read from '" + path + "'");
    fib.attach(static_cast<const std::uint8_t*>(b.ptr), size);
    return fib;
}

template <class Addr>
SnapshotFib<Addr> SnapshotFib<Addr>::load_buffer(const std::uint8_t* data, std::size_t size,
                                                 const LoadOptions& opt)
{
    SnapshotFib fib;
    fib.arena_ = std::make_unique<alloc::Arena>(opt.hugepages);
    if (size == 0) throw ImageError("truncated snapshot image: empty buffer");
    alloc::Arena::Block b = fib.arena_->map(size);
    fib.blocks_.push_back(b);
    std::memcpy(b.ptr, data, size);
    fib.attach(static_cast<const std::uint8_t*>(b.ptr), size);
    return fib;
}

template <class Addr>
poptrie::Config SnapshotFib<Addr>::config() const noexcept
{
    poptrie::Config cfg;
    cfg.direct_bits = hdr_.direct_bits;
    cfg.leaf_compression = hdr_.leaf_compression != 0;
    cfg.route_aggregation = hdr_.route_aggregation != 0;
    cfg.pool_headroom_log2 = hdr_.pool_headroom_log2;
    cfg.hugepages = static_cast<alloc::HugepagePolicy>(hdr_.hugepage_policy);
    cfg.leaf_dict = hdr_.leaf_dict_enabled != 0;
    return cfg;
}

// ---------------------------------------------------------------------------
// Structural verifier

namespace {

/// Image-side walker: the same invariants analysis::StructureWalker checks
/// on a live trie, restated over the raw sections (no allocators to cross-
/// check here — the image carries only the arrays).
template <class Addr>
class ImageWalker {
public:
    using Fib = SnapshotFib<Addr>;
    using Node = typename Fib::Node;

    ImageWalker(const Fib& fib, VerifyReport& r)
        : fib_(fib),
          leaf_compression_(fib.header().leaf_compression != 0),
          report_(r),
          visited_(static_cast<std::size_t>(fib.node_count()), false)
    {
    }

    void walk_root(std::uint32_t index, unsigned level, const std::string& where)
    {
        if (index >= fib_.node_count()) {
            add(where + ": root node index " + std::to_string(index) + " >= node count " +
                std::to_string(fib_.node_count()));
            return;
        }
        walk_node(index, level, where);
    }

private:
    void add(const std::string& detail)
    {
        if (report_.violations.size() < kMaxRecorded) report_.violations.push_back(detail);
        ++recorded_;
        if (recorded_ == kMaxRecorded + 1)
            report_.violations.push_back("... further violations not recorded");
    }

    void walk_node(std::uint32_t index, unsigned level, const std::string& where)
    {
        if (visited_[index]) {
            add(where + ": node " + std::to_string(index) + " reachable twice");
            return;
        }
        visited_[index] = true;
        ++report_.nodes_checked;
        if (level >= Fib::kWidth) {
            add(where + ": internal node at bit level " + std::to_string(level));
            return;
        }
        const Node& n = fib_.nodes_data()[index];
        const auto nkids = static_cast<std::uint32_t>(netbase::popcount64(n.vector));
        std::uint32_t nleaves = 0;
        if (leaf_compression_) {
            nleaves = static_cast<std::uint32_t>(netbase::popcount64(n.leafvec));
            if ((n.leafvec & n.vector) != 0)
                add(where + ": node " + std::to_string(index) +
                    " has leafvec bits on internal slots");
            if (n.vector != ~std::uint64_t{0}) {
                const auto first_leaf_slot = static_cast<unsigned>(std::countr_one(n.vector));
                if (((n.leafvec >> first_leaf_slot) & 1) == 0)
                    add(where + ": node " + std::to_string(index) + " first leaf slot " +
                        std::to_string(first_leaf_slot) + " does not start a run");
            }
        } else {
            nleaves = 64 - nkids;
            if (n.leafvec != 0)
                add(where + ": node " + std::to_string(index) + " has leafvec set in basic mode");
        }

        if (nleaves != 0 && (n.base0 & kLeaf8Bit) != 0) {
            // Dict-coded run (v2): dense, unaligned, every code inside the
            // dictionary. The offset is into the 8-bit code section.
            const std::uint32_t off = n.base0 & ~kLeaf8Bit;
            if (std::uint64_t{off} + nleaves > fib_.leaf8_count()) {
                add(where + ": node " + std::to_string(index) + " dict-coded leaf run at " +
                    std::to_string(off) + "(+" + std::to_string(nleaves) +
                    ") exceeds leaf8 count " + std::to_string(fib_.leaf8_count()));
            } else {
                report_.leaves_checked += nleaves;
                for (std::uint32_t i = 0; i < nleaves; ++i)
                    if (fib_.leaves8_data()[off + i] >= fib_.leaf_dict_count()) {
                        add(where + ": node " + std::to_string(index) + " leaf code " +
                            std::to_string(fib_.leaves8_data()[off + i]) +
                            " outside the dictionary (" +
                            std::to_string(fib_.leaf_dict_count()) + " entries)");
                        break;
                    }
            }
        } else if (nleaves != 0) {
            const auto block = alloc::BuddyAllocator::block_size_for(nleaves);
            if (std::uint64_t{n.base0} + block > fib_.leaf_count()) {
                add(where + ": node " + std::to_string(index) + " leaf run at " +
                    std::to_string(n.base0) + "(+" + std::to_string(block) +
                    ") exceeds leaf count " + std::to_string(fib_.leaf_count()));
            } else {
                report_.leaves_checked += nleaves;
                if (n.base0 % block != 0)
                    add(where + ": node " + std::to_string(index) + " leaf run at " +
                        std::to_string(n.base0) + " not aligned to " + std::to_string(block));
            }
        }

        if (nkids != 0) {
            const auto block = alloc::BuddyAllocator::block_size_for(nkids);
            if (std::uint64_t{n.base1} + block > fib_.node_count()) {
                add(where + ": node " + std::to_string(index) + " child run at " +
                    std::to_string(n.base1) + "(+" + std::to_string(block) +
                    ") exceeds node count " + std::to_string(fib_.node_count()));
                return;  // children unreadable
            }
            if (n.base1 % block != 0)
                add(where + ": node " + std::to_string(index) + " child run at " +
                    std::to_string(n.base1) + " not aligned to " + std::to_string(block));
            for (std::uint32_t i = 0; i < nkids; ++i)
                walk_node(n.base1 + i, level + Fib::kStride, where);
        }
    }

    static constexpr std::size_t kMaxRecorded = 64;
    static constexpr std::uint32_t kLeaf8Bit = poptrie::kLeaf8Bit;

    const Fib& fib_;
    bool leaf_compression_;
    VerifyReport& report_;
    std::vector<bool> visited_;
    std::size_t recorded_ = 0;
};

}  // namespace

template <class Addr>
VerifyReport verify_image(const SnapshotFib<Addr>& fib)
{
    VerifyReport r;
    const ImageHeader& hdr = fib.header();
    ImageWalker<Addr> walker(fib, r);
    if (hdr.direct_bits == 0) {
        walker.walk_root(hdr.root_index, 0, "root");
    } else {
        const std::uint32_t leaf_bit = poptrie::Poptrie<Addr>::kDirectLeafBit;
        for (std::uint64_t d = 0; d < hdr.direct_count; ++d) {
            ++r.direct_slots_checked;
            const std::uint32_t v = fib.direct_data()[d];
            if (v & leaf_bit) {
                if ((v & ~leaf_bit) > 0xFFFFu)
                    r.violations.push_back("direct[" + std::to_string(d) +
                                           "] leaf payload " + std::to_string(v & ~leaf_bit) +
                                           " exceeds the 16-bit next-hop range");
            } else {
                walker.walk_root(v, hdr.direct_bits, "direct[" + std::to_string(d) + "]");
            }
        }
    }
    return r;
}

template class SnapshotFib<netbase::Ipv4Addr>;
template class SnapshotFib<netbase::Ipv6Addr>;
template std::vector<std::uint8_t> serialize(const poptrie::Poptrie<netbase::Ipv4Addr>&);
template std::vector<std::uint8_t> serialize(const poptrie::Poptrie<netbase::Ipv6Addr>&);
template void save(const poptrie::Poptrie<netbase::Ipv4Addr>&, const std::string&);
template void save(const poptrie::Poptrie<netbase::Ipv6Addr>&, const std::string&);
template VerifyReport verify_image(const SnapshotFib<netbase::Ipv4Addr>&);
template VerifyReport verify_image(const SnapshotFib<netbase::Ipv6Addr>&);

}  // namespace snapshot
