// fuzz/fuzz_aggregate.cpp — harness 5: route aggregation preserves semantics.
//
// §3's route aggregation merges identical-next-hop sibling subtrees and
// drops redundant routes before the FIB is compiled. The correctness
// contract is purely observational: for EVERY address, LPM over the
// aggregated route set equals LPM over the original set. Fuzz-decoded route
// sets are the adversarial case generator here — duplicates, sibling floods
// and deep nesting are exactly the shapes the merge logic walks.
//
// Checks per execution:
//   * aggregate() output answers every probe like the original trie
//     (probes: boundaries of ORIGINAL routes, boundaries of AGGREGATED
//     routes — the new merge points — plus fuzz-chosen addresses);
//   * aggregation never grows the route count;
//   * aggregation is idempotent: aggregating the aggregated set changes
//     nothing (a canonical form, or the merge missed something);
//   * a Poptrie built with cfg.route_aggregation on equals one built with it
//     off, probe for probe (the in-build aggregation path).
#include <string>
#include <vector>

#include "fuzz/common.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/aggregate.hpp"
#include "rib/radix_trie.hpp"

namespace {

constexpr const char* kHarness = "fuzz_aggregate";

template <class Addr>
void run(fuzz::ByteReader& in, unsigned direct_bits)
{
    const auto ops = fuzz::decode_ops<Addr>(in);
    rib::RadixTrie<Addr> original;
    for (const auto& op : ops) {
        if (op.next_hop == rib::kNoRoute)
            original.erase(op.prefix);
        else
            original.insert(op.prefix, op.next_hop);
    }

    const auto aggregated_routes = rib::aggregate_routes(original);
    if (aggregated_routes.size() > original.route_count())
        fuzz::fail(kHarness, "aggregation grew the table",
                   std::to_string(original.route_count()) + " -> " +
                       std::to_string(aggregated_routes.size()) + " routes");
    rib::RadixTrie<Addr> aggregated;
    aggregated.insert_all(aggregated_routes);

    const auto again = rib::aggregate_routes(aggregated);
    if (again != aggregated_routes)
        fuzz::fail(kHarness, "aggregation not idempotent",
                   std::to_string(aggregated_routes.size()) + " routes re-aggregate to " +
                       std::to_string(again.size()));

    poptrie::Config cfg_raw;
    cfg_raw.direct_bits = direct_bits;
    cfg_raw.route_aggregation = false;
    poptrie::Config cfg_agg = cfg_raw;
    cfg_agg.route_aggregation = true;
    const poptrie::Poptrie<Addr> pt_raw{original, cfg_raw};
    const poptrie::Poptrie<Addr> pt_agg{original, cfg_agg};

    std::vector<typename Addr::value_type> probes;
    fuzz::boundary_probes(original.routes(), probes);
    fuzz::boundary_probes(aggregated_routes, probes);
    while (in.remaining() >= sizeof(typename Addr::value_type))
        probes.push_back(fuzz::read_key<Addr>(in));
    probes.push_back(0);
    probes.push_back(~typename Addr::value_type{0});

    for (const auto key : probes) {
        const Addr a{key};
        const auto want = original.lookup(a);
        if (const auto got = aggregated.lookup(a); got != want)
            fuzz::fail(kHarness, "aggregated FIB diverges from the unaggregated one",
                       netbase::to_string(a) + ": aggregated=" + std::to_string(got) +
                           " original=" + std::to_string(want));
        if (const auto got = pt_agg.lookup(a); got != want)
            fuzz::fail(kHarness, "poptrie(route_aggregation=on) diverges",
                       netbase::to_string(a) + ": got " + std::to_string(got) + ", want " +
                           std::to_string(want));
        if (const auto got = pt_raw.lookup(a); got != want)
            fuzz::fail(kHarness, "poptrie(route_aggregation=off) diverges",
                       netbase::to_string(a) + ": got " + std::to_string(got) + ", want " +
                           std::to_string(want));
    }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    fuzz::ByteReader in(data, size);
    const std::uint8_t sel = in.u8();
    constexpr unsigned direct_choices[] = {0, 6, 16, 18};
    const unsigned direct_bits = direct_choices[sel & 0x3u];
    if ((sel & 0x80u) != 0)
        run<netbase::Ipv6Addr>(in, direct_bits);
    else
        run<netbase::Ipv4Addr>(in, direct_bits);
    return 0;
}
