// fuzz/fuzz_differential.cpp — harness 1: differential longest-prefix-match.
//
// The oracle argument (DESIGN.md §6): the binary radix trie is a direct
// transcription of the LPM definition, so its answer *is* the specification.
// Every other structure in the repository — Poptrie in fuzz-chosen
// configurations (built incrementally, via apply()) and the baselines
// (Patricia, Tree BitMap 16/64, D16R, SAIL, Lulea, DIR-24-8) — must agree
// with it on every address. Seven independent implementations agreeing by
// accident on an address where Poptrie is wrong would require the same
// mis-resolution in structurally unrelated code; a disagreement therefore
// localizes a real bug with high probability. On top of the lookup oracle,
// the structural auditor (analysis/audit.hpp) cross-checks Poptrie's
// internals after the op replay, so corruption that happens not to flip any
// probed lookup still fails the run.
//
// Input layout: [config byte][family byte][route ops...][trailing bytes =
// extra probe addresses]. Ops are decoded by fuzz::decode_ops (see
// common.hpp); the RIB and the Poptrie are updated op by op, exercising the
// §3.5 incremental-update path, then the baselines are built from the final
// route set.
//
// The family byte's high bits are the lane/burst selector: bit 0 picks the
// address family (as before, so the committed corpus keeps its meaning),
// bits 1-2 pick the burst width (8/16/32) for the live EBR-guarded
// lookup_batch walk. Independently, every compiled-in + CPU-supported lane
// path (scalar / pipelined / AVX2 / AVX-512 — poptrie/lanes.hpp) replays the
// whole probe set against the radix oracle, so a gather kernel that
// disagrees with the scalar walk on any fuzz-grown table is a finding even
// when the scalar paths all agree.
//
// Config-byte bit 0x20 selects Config::leaf_dict: after the scalar and
// batch probes, the table is compacted at a quiescent point (which is when
// dictionary coding engages) and the probe set replays over the dict-coded
// layout.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "baselines/dir24.hpp"
#include "baselines/dxr.hpp"
#include "baselines/lulea.hpp"
#include "baselines/sail.hpp"
#include "baselines/treebitmap.hpp"
#include "fuzz/common.hpp"
#include "poptrie/lanes.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/patricia.hpp"
#include "rib/radix_trie.hpp"
#include "sync/annotations.hpp"

namespace {

constexpr const char* kHarness = "fuzz_differential";

template <class Addr>
void mismatch(const std::string& structure, Addr addr, rib::NextHop got,
              rib::NextHop want)
{
    fuzz::fail(kHarness, "lookup disagreement",
               structure + " at " + netbase::to_string(addr) + ": got " +
                   std::to_string(got) + ", radix oracle says " + std::to_string(want));
}

/// The fuzz-chosen burst width for the EBR-guarded lookup_batch walk.
/// `pt.lookup_batch` is templated on the width, so the selector dispatches
/// to one of the three instantiations the dataplane can also reach.
template <class Poptrie, class ValueType>
void batch_at_width(const Poptrie& pt, bool leaf_compression, unsigned width_sel,
                    const std::vector<ValueType>& keys,
                    std::vector<rib::NextHop>& out) POPTRIE_REQUIRES_SHARED(psync::cap::ebr)
{
    out.resize(keys.size());
    if (leaf_compression) {
        switch (width_sel) {
        case 0: pt.template lookup_batch<true, 8>(keys.data(), out.data(), keys.size()); break;
        case 1: pt.template lookup_batch<true, 16>(keys.data(), out.data(), keys.size()); break;
        default: pt.template lookup_batch<true, 32>(keys.data(), out.data(), keys.size()); break;
        }
    } else {
        switch (width_sel) {
        case 0: pt.template lookup_batch<false, 8>(keys.data(), out.data(), keys.size()); break;
        case 1: pt.template lookup_batch<false, 16>(keys.data(), out.data(), keys.size()); break;
        default: pt.template lookup_batch<false, 32>(keys.data(), out.data(), keys.size()); break;
        }
    }
}

void run_ipv4(fuzz::ByteReader& in, const poptrie::Config& cfg, unsigned width_sel)
{
    using Addr = netbase::Ipv4Addr;
    const auto ops = fuzz::decode_ops<Addr>(in);

    rib::RadixTrie<Addr> oracle;
    poptrie::Poptrie<Addr> pt{cfg};
    for (const auto& op : ops) pt.apply(oracle, op.prefix, op.next_hop);

    const auto routes = oracle.routes();
    rib::PatriciaTrie<Addr> patricia;
    patricia.insert_all(routes);
    const baselines::TreeBitmap16 tbm16{oracle};
    const baselines::TreeBitmap64 tbm64{oracle};
    // The range/chunk-encoded baselines have documented structural limits
    // (§4.8); the decoder keeps next hops inside their 15-bit payload, and
    // the tables here are far below their chunk-count ceilings, so a
    // StructuralLimit out of these constructors is itself a finding — let it
    // propagate and abort the run.
    const baselines::Dxr d16r{oracle, {.direct_bits = 16}};
    const baselines::Sail sail{oracle};
    const baselines::Lulea lulea{oracle};
    const baselines::Dir24 dir24{oracle};

    std::vector<Addr::value_type> probes;
    fuzz::boundary_probes(routes, probes);
    while (in.remaining() >= 4) probes.push_back(in.u32());
    probes.push_back(0);
    probes.push_back(~Addr::value_type{0});

    for (const auto key : probes) {
        const Addr a{key};
        const auto want = oracle.lookup(a);
        if (const auto got = pt.lookup(a); got != want) mismatch("poptrie", a, got, want);
        if (const auto got = patricia.lookup(a); got != want) mismatch("patricia", a, got, want);
        if (const auto got = tbm16.lookup(a); got != want) mismatch("treebitmap16", a, got, want);
        if (const auto got = tbm64.lookup(a); got != want) mismatch("treebitmap64", a, got, want);
        if (const auto got = d16r.lookup(a); got != want) mismatch("d16r", a, got, want);
        if (const auto got = sail.lookup(a); got != want) mismatch("sail", a, got, want);
        if (const auto got = lulea.lookup(a); got != want) mismatch("lulea", a, got, want);
        if (const auto got = dir24.lookup(a); got != want) mismatch("dir24", a, got, want);
    }

    // Batch lane paths over the identical probe set. The scalar per-probe
    // loop above already pinned the oracle answers; here every usable kernel
    // (and the fuzz-selected burst width of the live AtomicView walk) must
    // reproduce them.
    {
        std::vector<rib::NextHop> got(probes.size());
        const auto view = pt.batch_view();
        for (const auto path : poptrie::lanes::kAllPaths) {
            if (!poptrie::lanes::compiled_in(path) || !poptrie::lanes::cpu_supports(path))
                continue;
            poptrie::lanes::run(path, view, probes.data(), got.data(), probes.size());
            for (std::size_t i = 0; i < probes.size(); ++i) {
                const Addr a{probes[i]};
                if (const auto want = oracle.lookup(a); got[i] != want)
                    mismatch("lanes[" + std::string(poptrie::lanes::name(path)) + "]",
                             a, got[i], want);
            }
        }
        // reader: single-threaded harness — the claim marks the EBR
        // capability lookup_batch requires; there is no concurrent updater.
        const psync::EbrReadSection reader;
        batch_at_width(pt, cfg.leaf_compression, width_sel, probes, got);
        for (std::size_t i = 0; i < probes.size(); ++i) {
            const Addr a{probes[i]};
            if (const auto want = oracle.lookup(a); got[i] != want)
                mismatch("lookup_batch[w" + std::to_string(8u << width_sel) + "]", a,
                         got[i], want);
        }
    }

    // Dictionary-coded leaves (cfg.leaf_dict) only exist after a compact():
    // run one at a quiescent point and replay the whole probe set over the
    // re-laid-out (now dict-coded) structure, so the oracle cross-check
    // covers the 8-bit decode path and the auditor below walks tagged runs.
    if (cfg.leaf_dict) {
        {
            // quiescent: single-threaded harness — no reader exists.
            const psync::QuiescentSection quiescent;
            pt.compact();
        }
        for (const auto key : probes) {
            const Addr a{key};
            const auto want = oracle.lookup(a);
            if (const auto got = pt.lookup(a); got != want)
                mismatch("poptrie[dict-compacted]", a, got, want);
        }
    }

    analysis::AuditOptions aopt;
    aopt.random_probes = 512;  // the heavy probing already happened above
    const auto report = analysis::audit(pt, oracle, aopt);
    if (!report.ok()) fuzz::fail(kHarness, "poptrie-fsck audit failure", report.summary());
}

void run_ipv6(fuzz::ByteReader& in, const poptrie::Config& cfg, unsigned width_sel)
{
    using Addr = netbase::Ipv6Addr;
    const auto ops = fuzz::decode_ops<Addr>(in);

    rib::RadixTrie<Addr> oracle;
    poptrie::Poptrie<Addr> pt{cfg};
    for (const auto& op : ops) pt.apply(oracle, op.prefix, op.next_hop);

    const auto routes = oracle.routes();
    rib::PatriciaTrie<Addr> patricia;
    patricia.insert_all(routes);
    const baselines::TreeBitmap<Addr, 6> tbm6{oracle};
    const baselines::Dxr6 dxr6{oracle};

    std::vector<Addr::value_type> probes;
    fuzz::boundary_probes(routes, probes);
    while (in.remaining() >= 16) probes.push_back(in.u128v());
    probes.push_back(0);
    probes.push_back(~Addr::value_type{0});

    for (const auto key : probes) {
        const Addr a{key};
        const auto want = oracle.lookup(a);
        if (const auto got = pt.lookup(a); got != want) mismatch("poptrie6", a, got, want);
        if (const auto got = patricia.lookup(a); got != want)
            mismatch("patricia6", a, got, want);
        if (const auto got = tbm6.lookup(a); got != want) mismatch("treebitmap6", a, got, want);
        if (const auto got = dxr6.lookup(a); got != want) mismatch("dxr6", a, got, want);
    }

    // The SIMD lane kernels are IPv4-only, but the interleaved batch walk is
    // family-generic: replay the probes at the fuzz-selected burst width.
    {
        std::vector<rib::NextHop> got(probes.size());
        // reader: single-threaded harness — the claim marks the EBR
        // capability lookup_batch requires; there is no concurrent updater.
        const psync::EbrReadSection reader;
        batch_at_width(pt, cfg.leaf_compression, width_sel, probes, got);
        for (std::size_t i = 0; i < probes.size(); ++i) {
            const Addr a{probes[i]};
            if (const auto want = oracle.lookup(a); got[i] != want)
                mismatch("lookup_batch6[w" + std::to_string(8u << width_sel) + "]", a,
                         got[i], want);
        }
    }

    // Same dict-compacted replay as the IPv4 leg.
    if (cfg.leaf_dict) {
        {
            // quiescent: single-threaded harness — no reader exists.
            const psync::QuiescentSection quiescent;
            pt.compact();
        }
        for (const auto key : probes) {
            const Addr a{key};
            const auto want = oracle.lookup(a);
            if (const auto got = pt.lookup(a); got != want)
                mismatch("poptrie6[dict-compacted]", a, got, want);
        }
    }

    analysis::AuditOptions aopt;
    aopt.random_probes = 512;
    const auto report = analysis::audit(pt, oracle, aopt);
    if (!report.ok()) fuzz::fail(kHarness, "poptrie-fsck audit failure", report.summary());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    fuzz::ByteReader in(data, size);
    const auto cfg = fuzz::decode_config(in.u8());
    const auto family_byte = in.u8();
    const bool v6 = (family_byte & 1u) != 0;
    // Bits 1-2 select the lookup_batch burst width: 8, 16, or 32 (both
    // values 2 and 3 map to 32 so the label matches what actually ran).
    const unsigned width_sel = std::min((family_byte >> 1) & 3u, 2u);
    if (v6)
        run_ipv6(in, cfg, width_sel);
    else
        run_ipv4(in, cfg, width_sel);
    return 0;
}
