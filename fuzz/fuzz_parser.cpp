// fuzz/fuzz_parser.cpp — harness 3: address/prefix/table-file parser checks.
//
// Two directions, both driven by the same input bytes:
//
//   text → value → text: the raw input is fed to parse_ipv4 / parse_ipv6 /
//   parse_prefix4 / parse_prefix6 and to the table-file loaders. A parser
//   may reject (that is the hardened path this PR adds tests for), but it
//   must never crash, hang, or accept a value that does not re-parse to
//   itself — to_string(parse(x)) must be a fixed point: formatting a parsed
//   value and re-parsing it yields the identical value and identical
//   canonical text.
//
//   value → text → value: the input bytes are also read as raw address
//   integers; to_string of any value must parse back to exactly that value
//   (surjectivity of the canonical form over the whole 32-/128-bit space).
//
// The table loaders go through std::istream on the raw bytes and must either
// produce a loadable route list (which then saves and reloads to the same
// list) or throw TableIoError with a sane line number — anything else
// (std::bad_alloc from a hostile length, assert, UB) is a finding.
#include <sstream>
#include <string>
#include <string_view>

#include "fuzz/common.hpp"
#include "netbase/ipv4.hpp"
#include "netbase/ipv6.hpp"
#include "netbase/prefix.hpp"
#include "workload/tableio.hpp"

namespace {

constexpr const char* kHarness = "fuzz_parser";

void check_ipv4_text(std::string_view text)
{
    const auto a = netbase::parse_ipv4(text);
    if (!a) return;
    const auto shown = netbase::to_string(*a);
    const auto again = netbase::parse_ipv4(shown);
    if (!again || *again != *a)
        fuzz::fail(kHarness, "ipv4 text round-trip",
                   "'" + std::string(text) + "' -> '" + shown + "' failed to re-parse equal");
}

void check_ipv6_text(std::string_view text)
{
    const auto a = netbase::parse_ipv6(text);
    if (!a) return;
    const auto shown = netbase::to_string(*a);
    const auto again = netbase::parse_ipv6(shown);
    if (!again || *again != *a)
        fuzz::fail(kHarness, "ipv6 text round-trip",
                   "'" + std::string(text) + "' -> '" + shown + "' failed to re-parse equal");
    // RFC 5952 canonical form is itself canonical: formatting what we
    // re-parsed must reproduce the same spelling.
    if (netbase::to_string(*again) != shown)
        fuzz::fail(kHarness, "ipv6 canonical form not a fixed point",
                   "'" + std::string(text) + "' -> '" + shown + "' -> '" +
                       netbase::to_string(*again) + "'");
}

void check_prefix_text(std::string_view text)
{
    if (const auto p = netbase::parse_prefix4(text)) {
        const auto shown = netbase::to_string(*p);
        const auto again = netbase::parse_prefix4(shown);
        if (!again || *again != *p)
            fuzz::fail(kHarness, "prefix4 round-trip", std::string(text) + " -> " + shown);
    }
    if (const auto p = netbase::parse_prefix6(text)) {
        const auto shown = netbase::to_string(*p);
        const auto again = netbase::parse_prefix6(shown);
        if (!again || *again != *p)
            fuzz::fail(kHarness, "prefix6 round-trip", std::string(text) + " -> " + shown);
    }
}

void check_table_load(const std::string& text)
{
    try {
        std::istringstream in(text);
        const auto routes = workload::load_table4(in);
        std::ostringstream out;
        workload::save_table(out, routes);
        std::istringstream in2(out.str());
        if (workload::load_table4(in2) != routes)
            fuzz::fail(kHarness, "table4 save/load round-trip", out.str());
    } catch (const workload::TableIoError&) {
        // rejection is fine; crashing is not
    }
    try {
        std::istringstream in(text);
        const auto routes = workload::load_table6(in);
        std::ostringstream out;
        workload::save_table(out, routes);
        std::istringstream in2(out.str());
        if (workload::load_table6(in2) != routes)
            fuzz::fail(kHarness, "table6 save/load round-trip", out.str());
    } catch (const workload::TableIoError&) {
    }
}

template <class Addr>
void check_value_roundtrip(typename Addr::value_type key)
{
    const Addr a{key};
    const auto shown = netbase::to_string(a);
    std::optional<Addr> again;
    if constexpr (Addr::kWidth == 32)
        again = netbase::parse_ipv4(shown);
    else
        again = netbase::parse_ipv6(shown);
    if (!again || *again != a)
        fuzz::fail(kHarness, "value -> text -> value round-trip", shown);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    const std::string text(reinterpret_cast<const char*>(data), size);
    check_ipv4_text(text);
    check_ipv6_text(text);
    check_prefix_text(text);
    check_table_load(text);

    fuzz::ByteReader in(data, size);
    check_value_roundtrip<netbase::Ipv4Addr>(in.u32());
    check_value_roundtrip<netbase::Ipv6Addr>(in.u128v());
    // Prefix canonicalization: (addr, len) from the stream must mask to a
    // prefix whose text form round-trips and whose address has no bits past
    // the length.
    const auto p4 = netbase::Prefix4{netbase::Ipv4Addr{in.u32()},
                                     fuzz::decode_length<netbase::Ipv4Addr>(in.u8())};
    if ((p4.bits() & ~netbase::high_mask<std::uint32_t>(p4.length())) != 0)
        fuzz::fail(kHarness, "prefix4 not canonical", netbase::to_string(p4));
    if (const auto again = netbase::parse_prefix4(netbase::to_string(p4));
        !again || *again != p4)
        fuzz::fail(kHarness, "prefix4 value round-trip", netbase::to_string(p4));
    const auto p6 = netbase::Prefix6{netbase::Ipv6Addr{in.u128v()},
                                     fuzz::decode_length<netbase::Ipv6Addr>(in.u8())};
    if ((p6.bits() & ~netbase::high_mask<netbase::u128>(p6.length())) != 0)
        fuzz::fail(kHarness, "prefix6 not canonical", netbase::to_string(p6));
    if (const auto again = netbase::parse_prefix6(netbase::to_string(p6));
        !again || *again != p6)
        fuzz::fail(kHarness, "prefix6 value round-trip", netbase::to_string(p6));
    return 0;
}
