// fuzz/fuzz_snapshot_roundtrip.cpp — harness 6: save/load image equivalence.
//
// The snapshot contract (DESIGN.md §11) is twofold. First, round-trip
// fidelity: serialize → load must yield a FIB that answers every lookup
// exactly like the live trie it was taken from (and the RIB oracle), for
// any op sequence, any configuration, compacted or not, both address
// families — and the loaded image must pass the structural verifier.
// Second, corruption rejection: every byte of the image is covered by a
// checksum (header or payload), so a single bit flip at ANY fuzz-chosen
// offset must make the loader throw ImageError rather than serve a mangled
// table. This harness checks both properties on every input.
#include <string>
#include <vector>

#include "fuzz/common.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"
#include "snapshot/snapshot.hpp"

namespace {

constexpr const char* kHarness = "fuzz_snapshot_roundtrip";

template <class Addr>
void run(fuzz::ByteReader& in, const poptrie::Config& cfg, bool compact,
         std::uint32_t flip_sel)
{
    const auto ops = fuzz::decode_ops<Addr>(in);
    std::vector<typename Addr::value_type> probes;
    while (in.remaining() >= sizeof(typename Addr::value_type))
        probes.push_back(fuzz::read_key<Addr>(in));

    // quiescent: the fuzz harness is single-threaded — no reader thread
    // exists, so drain/compact/serialize are safe.
    const psync::QuiescentSection quiescent;
    rib::RadixTrie<Addr> rib;
    poptrie::Poptrie<Addr> pt{cfg};
    for (const auto& op : ops) pt.apply(rib, op.prefix, op.next_hop);
    pt.drain();
    if (compact) pt.compact();

    const auto img = snapshot::serialize(pt);
    const auto fib = snapshot::SnapshotFib<Addr>::load_buffer(img.data(), img.size());

    fuzz::boundary_probes(rib.routes(), probes);
    probes.push_back(0);
    probes.push_back(~typename Addr::value_type{0});
    for (const auto key : probes) {
        const Addr a{key};
        const auto restored = fib.lookup(a);
        const auto live = pt.lookup(a);
        const auto want = rib.lookup(a);
        if (restored != live || restored != want)
            fuzz::fail(kHarness, "snapshot round-trip divergence",
                       "at " + netbase::to_string(a) + ": restored=" +
                           std::to_string(restored) + " live=" + std::to_string(live) +
                           " rib=" + std::to_string(want));
    }

    // The restored batch path must agree with the restored scalar path.
    std::vector<rib::NextHop> batch(probes.size());
    fib.lookup_batch(probes.data(), batch.data(), probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        if (batch[i] != fib.lookup(Addr{probes[i]}))
            fuzz::fail(kHarness, "restored batch/scalar divergence",
                       "at " + netbase::to_string(Addr{probes[i]}));
    }

    const auto vr = snapshot::verify_image(fib);
    if (!vr.ok())
        fuzz::fail(kHarness, "verify_image failure on round-tripped image", vr.summary());

    // Corruption rejection: flip one fuzz-chosen bit anywhere in the image.
    auto corrupted = img;
    const std::size_t off = static_cast<std::size_t>(flip_sel) % corrupted.size();
    corrupted[off] ^= static_cast<std::uint8_t>(1u << (flip_sel >> 29));
    bool rejected = false;
    try {
        static_cast<void>(snapshot::SnapshotFib<Addr>::load_buffer(corrupted.data(),
                                                                   corrupted.size()));
    } catch (const snapshot::ImageError&) {
        rejected = true;
    }
    if (!rejected)
        fuzz::fail(kHarness, "corrupted image accepted",
                   "bit " + std::to_string(flip_sel >> 29) + " flipped at byte " +
                       std::to_string(off) + " of " + std::to_string(corrupted.size()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    fuzz::ByteReader in(data, size);
    const auto cfg = fuzz::decode_config(in.u8());
    const std::uint8_t sel = in.u8();
    const std::uint32_t flip_sel = in.u32();
    const bool compact = (sel & 0x40u) != 0;
    if ((sel & 0x80u) != 0)
        run<netbase::Ipv6Addr>(in, cfg, compact, flip_sel);
    else
        run<netbase::Ipv4Addr>(in, cfg, compact, flip_sel);
    return 0;
}
