// fuzz/fuzz_buddy.cpp — harness 4: buddy-allocator op-sequence invariants.
//
// The buddy allocator is the only mutable shared bookkeeping under Poptrie's
// arrays; a bad coalesce or a mis-aligned split silently hands two live node
// runs the same slots, which is exactly the failure class poptrie-fsck's
// allocator checks exist for. This harness drives an allocator with a
// fuzz-decoded alloc/free/grow sequence while mirroring every live run in a
// shadow model, checking after each op that
//
//   * every allocation is inside the pool, aligned to its rounded size, and
//     disjoint from every other live run (shadow-model cross-check);
//   * used() equals the shadow model's rounded total, and allocate() fails
//     only when the shadow model agrees no aligned block of that size fits
//     (no false negatives: a buddy system must satisfy any request up to
//     largest_free_run());
//   * analysis::audit_allocator finds no structural violation (free-list
//     alignment, coalescing, accounting);
//   * after freeing everything the pool reports all_free().
#include <algorithm>
#include <string>
#include <vector>

#include "alloc/buddy_allocator.hpp"
#include "analysis/audit.hpp"
#include "fuzz/common.hpp"

namespace {

constexpr const char* kHarness = "fuzz_buddy";

struct LiveRun {
    std::uint32_t offset;
    std::uint32_t count;    // as requested
    std::uint32_t rounded;  // as occupied
};

void check_state(const alloc::BuddyAllocator& pool, const std::vector<LiveRun>& live,
                 const char* when)
{
    const auto report = analysis::audit_allocator(pool);
    if (!report.ok()) fuzz::fail(kHarness, when, report.summary());
    std::uint64_t total = 0;
    for (const auto& run : live) total += run.rounded;
    if (total != pool.used())
        fuzz::fail(kHarness, "used() drifted from the shadow model",
                   std::string(when) + ": model says " + std::to_string(total) +
                       ", pool says " + std::to_string(pool.used()));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    fuzz::ByteReader in(data, size);
    // Initial capacity 2^(0..10); grow() can double it a bounded number of
    // times so the pool never exceeds ~2^20 slots in one execution.
    alloc::BuddyAllocator pool(std::uint32_t{1} << (in.u8() % 11));
    std::vector<LiveRun> live;
    unsigned grows_left = 8;

    std::size_t ops = 0;
    while (!in.empty() && ops < 512) {
        ++ops;
        const std::uint8_t tag = in.u8();
        switch (tag % 8) {
        case 0:
        case 1:
        case 2: {  // allocate; sizes biased to powers of two and neighbours
            const std::uint8_t s = in.u8();
            std::uint32_t count = (std::uint32_t{1} << (s % 10));
            if ((s & 0x40u) != 0 && count > 1) --count;
            if ((s & 0x80u) != 0) ++count;
            const auto rounded = alloc::BuddyAllocator::block_size_for(count);
            const auto got = pool.allocate(count);
            if (!got) {
                if (pool.largest_free_run() >= rounded)
                    fuzz::fail(kHarness, "allocate refused a satisfiable request",
                               std::to_string(count) + " slots refused with largest free run " +
                                   std::to_string(pool.largest_free_run()));
                break;
            }
            const std::uint32_t offset = *got;
            if (offset % rounded != 0 ||
                std::uint64_t{offset} + rounded > pool.capacity())
                fuzz::fail(kHarness, "misaligned or out-of-bounds allocation",
                           std::to_string(offset) + "+" + std::to_string(rounded) + " of " +
                               std::to_string(pool.capacity()));
            for (const auto& run : live)
                if (offset < run.offset + run.rounded && run.offset < offset + rounded)
                    fuzz::fail(kHarness, "allocation overlaps a live run",
                               std::to_string(offset) + "+" + std::to_string(rounded) +
                                   " vs live " + std::to_string(run.offset) + "+" +
                                   std::to_string(run.rounded));
            live.push_back({offset, count, rounded});
            break;
        }
        case 3:
        case 4:
        case 5: {  // free one live run, fuzz-chosen
            if (live.empty()) break;
            const std::size_t i = in.u8() % live.size();
            pool.free(live[i].offset, live[i].count);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
            break;
        }
        case 6:  // grow (bounded)
            if (grows_left > 0 && pool.capacity() <= (std::uint32_t{1} << 19)) {
                --grows_left;
                pool.grow();
            }
            break;
        default:  // audit checkpoint
            check_state(pool, live, "mid-sequence audit");
            break;
        }
    }

    check_state(pool, live, "end-of-sequence audit");
    for (const auto& run : live) pool.free(run.offset, run.count);
    live.clear();
    check_state(pool, live, "post-teardown audit");
    if (!pool.all_free())
        fuzz::fail(kHarness, "pool not all_free after freeing every run",
                   std::to_string(pool.used()) + " slots still marked used");
    return 0;
}
