// fuzz/common.hpp — shared structure-aware mutator helpers for the fuzz
// harnesses.
//
// libFuzzer (and the standalone driver in driver_main.cpp) hands each harness
// an opaque byte string. Interpreting those bytes directly as addresses would
// make the interesting collisions — duplicate prefixes, sibling pairs, a /32
// inside a /8, an update that withdraws what a previous op announced —
// astronomically unlikely. The decoder here therefore spends most of its
// entropy on *relationships*: an op can derive its prefix from a previous
// op's prefix (same, sibling, parent, child) instead of minting a fresh one,
// and prefix lengths are drawn from a table biased toward the structural
// boundaries the lookup structures care about (/0, stride multiples, the
// direct-pointing cut, the host-route widths). Every byte string decodes to
// *some* valid op sequence, so the fuzzer can never waste executions on
// "parse errors" — the classic structure-aware fuzzing recipe.
//
// All helpers are bounded: op counts, history depth and pool sizes are capped
// so a pathological input costs milliseconds, not minutes (libFuzzer treats a
// slow input as a finding of the wrong kind).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "netbase/prefix.hpp"
#include "poptrie/config.hpp"
#include "rib/route.hpp"

namespace fuzz {

/// Sequential little-endian reader over the fuzz input. Reads past the end
/// return zero instead of failing: a truncated input decodes to a shorter
/// (still valid) op sequence, which keeps corpus minimization effective.
class ByteReader {
public:
    ByteReader(const std::uint8_t* data, std::size_t size) noexcept : p_(data), end_(data + size)
    {
    }

    [[nodiscard]] bool empty() const noexcept { return p_ == end_; }
    [[nodiscard]] std::size_t remaining() const noexcept
    {
        return static_cast<std::size_t>(end_ - p_);
    }

    [[nodiscard]] std::uint8_t u8() noexcept { return p_ == end_ ? 0 : *p_++; }

    [[nodiscard]] std::uint16_t u16() noexcept
    {
        return static_cast<std::uint16_t>(u8() | (std::uint16_t{u8()} << 8));
    }

    [[nodiscard]] std::uint32_t u32() noexcept
    {
        return u16() | (std::uint32_t{u16()} << 16);
    }

    [[nodiscard]] std::uint64_t u64() noexcept
    {
        return u32() | (std::uint64_t{u32()} << 32);
    }

    [[nodiscard]] netbase::u128 u128v() noexcept
    {
        const auto hi = u64();
        return (netbase::u128{hi} << 64) | u64();
    }

private:
    const std::uint8_t* p_;
    const std::uint8_t* end_;
};

/// Reads the address-family-sized integer for `Addr`.
template <class Addr>
[[nodiscard]] typename Addr::value_type read_key(ByteReader& in) noexcept
{
    if constexpr (Addr::kWidth == 32)
        return in.u32();
    else
        return in.u128v();
}

/// Maps one byte to a prefix length in [0, kWidth], biased toward the
/// structurally interesting lengths: /0 (default route), the full host width,
/// one off the host width, the 6-bit stride boundaries of Poptrie, the
/// direct-pointing cuts (16/17/18/19), and the BGP mode (/24 for v4, /48 for
/// v6). Half the byte range falls through to a uniform draw so no length is
/// unreachable.
template <class Addr>
[[nodiscard]] unsigned decode_length(std::uint8_t b) noexcept
{
    constexpr unsigned w = Addr::kWidth;
    // clang-format off
    constexpr unsigned interesting[] = {
        0, w, w - 1, 1, 6, 12, 18, 24,
        w >= 30 ? 30u : w, 8, 16, 17, 19,
        w == 32 ? 24u : 48u, w == 32 ? 25u : 64u, w / 2,
    };
    // clang-format on
    if (b < 128) return interesting[b % (sizeof(interesting) / sizeof(interesting[0]))];
    return b % (w + 1);
}

/// One decoded routing operation. `next_hop == rib::kNoRoute` withdraws the
/// prefix; otherwise it announces (insert or modify — a modify is an announce
/// over a prefix that is already present).
template <class Addr>
struct RouteOp {
    netbase::Prefix<Addr> prefix;
    rib::NextHop next_hop = rib::kNoRoute;
};

/// Decoding knobs. The defaults keep a single harness execution comfortably
/// under a millisecond of structure churn.
struct DecodeLimits {
    std::size_t max_ops = 192;
    std::size_t history = 32;  ///< how many recent prefixes derivation can reference
};

/// Decodes a route-op sequence. Op layout (per op, ~6–20 bytes):
///
///   byte 0  bits 0-2: derivation mode
///             0,1  fresh prefix from the stream (address + length byte)
///             2    duplicate of history[i] (same prefix, new hop / withdraw)
///             3    sibling of history[i] (last prefix bit flipped)
///             4    parent of history[i] (one bit shorter)
///             5    child of history[i] (one bit longer, branch from bit 3)
///             6    history[i] re-masked to a fresh length (nesting)
///             7    fresh prefix
///           bit 4: withdraw instead of announce (1 in 2 ops when set —
///                  withdrawals of both live and absent prefixes are legal
///                  and must be handled)
///   byte 1  history index / length byte (mode-dependent)
///   then    address bytes for fresh modes, 2 next-hop bytes for announces
///
/// Sibling-dense patterns emerge naturally: a corpus entry that repeats mode
/// 3/5 ops floods one subtree with adjacent prefixes.
template <class Addr>
[[nodiscard]] std::vector<RouteOp<Addr>> decode_ops(ByteReader& in,
                                                    const DecodeLimits& lim = {})
{
    using Prefix = netbase::Prefix<Addr>;
    std::vector<RouteOp<Addr>> ops;
    std::vector<Prefix> history;
    ops.reserve(lim.max_ops);
    while (!in.empty() && ops.size() < lim.max_ops) {
        const std::uint8_t tag = in.u8();
        const unsigned mode = tag & 0x7u;
        const bool withdraw = (tag & 0x10u) != 0;
        Prefix p;
        if (history.empty() || mode <= 1 || mode == 7) {
            const auto key = read_key<Addr>(in);
            p = Prefix{Addr{key}, decode_length<Addr>(in.u8())};
        } else {
            const Prefix& h = history[in.u8() % history.size()];
            switch (mode) {
            case 2: p = h; break;
            case 3:  // sibling: flip the last prefix bit
                if (h.length() == 0) {
                    p = h;
                } else {
                    const auto flip = static_cast<typename Addr::value_type>(
                        typename Addr::value_type{1} << (Addr::kWidth - h.length()));
                    p = Prefix{Addr{h.bits() ^ flip}, h.length()};
                }
                break;
            case 4: p = h.length() == 0 ? h : h.parent(); break;
            case 5:
                p = h.length() == Addr::kWidth ? h : h.child((tag >> 3) & 1u);
                break;
            default:  // 6: re-mask to a new length — nests or widens
                p = Prefix{h.address(), decode_length<Addr>(in.u8())};
                break;
            }
        }
        history.push_back(p);
        if (history.size() > lim.history) history.erase(history.begin());
        RouteOp<Addr> op;
        op.prefix = p;
        // Announce hops live in [1, 0x7FFF]: kNoRoute is the withdraw
        // encoding, and several baselines (SAIL, Lulea, DIR-24-8) reject
        // hops above their 15-bit payload by design — the differential
        // harness wants agreement checks, not structural-limit exits.
        op.next_hop =
            withdraw ? rib::kNoRoute : static_cast<rib::NextHop>(1 + (in.u16() & 0x7FFF));
        if (op.next_hop > 0x7FFF) op.next_hop = 0x7FFF;
        ops.push_back(op);
    }
    return ops;
}

/// Decodes a Poptrie configuration from one byte. Direct-pointing sizes are
/// capped at 18 bits (a 1 MiB top array) so a fuzz execution stays cheap.
[[nodiscard]] inline poptrie::Config decode_config(std::uint8_t b) noexcept
{
    poptrie::Config cfg;
    constexpr unsigned direct_choices[] = {0, 6, 12, 16, 17, 18};
    cfg.direct_bits = direct_choices[b % 6];
    cfg.leaf_compression = (b & 0x40u) != 0;
    cfg.route_aggregation = (b & 0x80u) != 0;
    // Dictionary-coded leaves only engage at compact() time; harnesses that
    // set this must also run a compact under a QuiescentSection so the
    // oracle cross-check actually covers the 8-bit decode path.
    cfg.leaf_dict = (b & 0x20u) != 0;
    return cfg;
}

/// Collects the differential probe set for a route list: every prefix's
/// first/last covered address and both one-off neighbours (the addresses
/// where a compressed structure's run boundaries sit), capped at `max_routes`
/// routes.
template <class Addr>
void boundary_probes(const rib::RouteList<Addr>& routes,
                     std::vector<typename Addr::value_type>& out,
                     std::size_t max_routes = 4096)
{
    const std::size_t n = routes.size() < max_routes ? routes.size() : max_routes;
    out.reserve(out.size() + n * 4);
    for (std::size_t i = 0; i < n; ++i) {
        const auto lo = routes[i].prefix.first_address().value();
        const auto hi = routes[i].prefix.last_address().value();
        out.push_back(lo);
        out.push_back(hi);
        out.push_back(lo - 1);  // wraps at 0: still a valid probe address
        out.push_back(hi + 1);
    }
}

/// Aborts with a readable banner. Both the libFuzzer build (which traps
/// abort() and saves the crashing input) and the standalone driver (which
/// reports the failing file) key off the process aborting.
[[noreturn]] inline void fail(const char* harness, const char* what, const std::string& detail)
{
    std::fprintf(stderr, "\n=== %s: %s ===\n%s\n", harness, what, detail.c_str());
    std::fflush(stderr);
    std::abort();
}

}  // namespace fuzz
