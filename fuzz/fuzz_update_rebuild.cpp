// fuzz/fuzz_update_rebuild.cpp — harness 2: incremental update ≡ full rebuild.
//
// §3.5's claim is that apply() patches the live FIB into a state that answers
// every lookup exactly like a FIB compiled from scratch from the updated RIB
// (when route aggregation is on, the *arrays* may differ — the incrementally
// updated table is allowed to be less tightly compressed — but the lookup
// relation must be identical). This harness replays a fuzz-decoded op
// sequence into one Poptrie via apply() and, at fuzz-chosen checkpoints,
// rebuilds a second Poptrie from the same RIB with the same configuration,
// then compares the two over every route boundary and a set of fuzz-chosen
// addresses. The structural auditor runs on the incrementally updated table
// at every checkpoint, so allocator/EBR corruption shows up even when the
// lookup relation still holds.
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "fuzz/common.hpp"
#include "poptrie/poptrie.hpp"
#include "rib/radix_trie.hpp"

namespace {

constexpr const char* kHarness = "fuzz_update_rebuild";

template <class Addr>
void check_equivalent(const poptrie::Poptrie<Addr>& incremental,
                      const rib::RadixTrie<Addr>& rib, const poptrie::Config& cfg,
                      std::vector<typename Addr::value_type> probes, std::size_t at_op,
                      bool expect_compacted)
{
    const poptrie::Poptrie<Addr> rebuilt{rib, cfg};
    fuzz::boundary_probes(rib.routes(), probes);
    probes.push_back(0);
    probes.push_back(~typename Addr::value_type{0});
    for (const auto key : probes) {
        const Addr a{key};
        const auto inc = incremental.lookup(a);
        const auto full = rebuilt.lookup(a);
        const auto want = rib.lookup(a);
        if (inc != full || inc != want)
            fuzz::fail(kHarness, "incremental/rebuild divergence",
                       "after op " + std::to_string(at_op) + " at " + netbase::to_string(a) +
                           ": incremental=" + std::to_string(inc) +
                           " rebuilt=" + std::to_string(full) +
                           " rib=" + std::to_string(want));
    }
    analysis::AuditOptions aopt;
    aopt.random_probes = 256;
    aopt.expect_compacted = expect_compacted;
    const auto report = analysis::audit(incremental, rib, aopt);
    if (!report.ok())
        fuzz::fail(kHarness, "audit failure on incrementally updated table",
                   "after op " + std::to_string(at_op) + "\n" + report.summary());
}

template <class Addr>
void run(fuzz::ByteReader& in, const poptrie::Config& cfg, unsigned checkpoint_mask,
         bool compact_at_checkpoints)
{
    const auto ops = fuzz::decode_ops<Addr>(in);

    std::vector<typename Addr::value_type> extra_probes;
    while (in.remaining() >= sizeof(typename Addr::value_type))
        extra_probes.push_back(fuzz::read_key<Addr>(in));

    // quiescent: the fuzz harness is single-threaded — no reader thread
    // exists, so the checkpoint compact()/drain() passes are safe.
    const psync::QuiescentSection quiescent;
    rib::RadixTrie<Addr> rib;
    poptrie::Poptrie<Addr> pt{cfg};
    std::size_t i = 0;
    for (const auto& op : ops) {
        pt.apply(rib, op.prefix, op.next_hop);
        ++i;
        // Checkpoint cadence is fuzz-chosen (a power-of-two mask): some
        // inputs compare after every op, others only at the end, so both
        // "fresh damage" and "accumulated drift" schedules are explored.
        // With sel bit 6 set, every checkpoint is preceded by a compaction
        // pass, so apply()-on-compacted-pools and compact()-on-churned-pools
        // are both fuzzed; the audit then also verifies the canonical layout.
        if ((i & checkpoint_mask) == 0) {
            if (compact_at_checkpoints) pt.compact();
            check_equivalent(pt, rib, cfg, extra_probes, i, compact_at_checkpoints);
        }
    }
    if (compact_at_checkpoints) pt.compact();
    check_equivalent(pt, rib, cfg, extra_probes, i, compact_at_checkpoints);
    pt.drain();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    fuzz::ByteReader in(data, size);
    const auto cfg = fuzz::decode_config(in.u8());
    const std::uint8_t sel = in.u8();
    const unsigned checkpoint_mask = (1u << (sel & 0x7u)) - 1;  // 0,1,3,...,127
    const bool compact = (sel & 0x40u) != 0;
    if ((sel & 0x80u) != 0)
        run<netbase::Ipv6Addr>(in, cfg, checkpoint_mask, compact);
    else
        run<netbase::Ipv4Addr>(in, cfg, checkpoint_mask, compact);
    return 0;
}
