// fuzz/driver_main.cpp — standalone driver for the fuzz harnesses.
//
// The harnesses export the canonical libFuzzer entry point
// (LLVMFuzzerTestOneInput). When the toolchain provides libFuzzer (clang,
// -DPOPTRIE_FUZZ=ON) the harness links against -fsanitize=fuzzer and this
// file is not compiled. Everywhere else — notably the GCC-only CI image and
// the default build — this driver supplies a main() that speaks the same
// command-line dialect, so scripts and ctest entries work against either
// engine:
//
//     fuzz_parser -runs=0 corpus/parser corpus/regressions/fuzz_parser
//         replay every file in the given files/directories once and exit
//         non-zero if any of them crashes the harness (regression mode;
//         crashes abort(), so the exit code comes from the crash itself)
//
//     fuzz_parser -max_total_time=60 -seed=7 corpus/parser
//         replay the corpus, then fuzz: generate mutated inputs from the
//         corpus (and from scratch) for 60 seconds (smoke mode)
//
//     fuzz_parser -runs=10000 corpus/parser
//         same, but bounded by execution count instead of wall clock
//
// The built-in mutator is deliberately simple (bit flips, byte edits,
// truncate/extend, splice, interesting-integer overwrite): the structure
// decoding in common.hpp is tolerant by construction, so even naive byte
// mutations explore real route-table shapes. It is not a substitute for
// coverage guidance — it is the portable floor that keeps the harnesses
// exercised on every toolchain.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

using Input = std::vector<std::uint8_t>;

constexpr std::size_t kMaxLen = 1 << 14;  // matches libFuzzer's default ballpark

Input read_file(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    return Input(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

// Collects regular files from a file-or-directory argument (one level of
// recursion is enough for corpus layouts; libFuzzer behaves the same way).
void collect(const fs::path& arg, std::vector<fs::path>& out)
{
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
        for (const auto& entry : fs::recursive_directory_iterator(arg, ec))
            if (entry.is_regular_file()) out.push_back(entry.path());
        std::sort(out.begin(), out.end());
    } else if (fs::is_regular_file(arg, ec)) {
        out.push_back(arg);
    } else {
        std::fprintf(stderr, "driver: ignoring missing corpus path %s\n", arg.c_str());
    }
}

void mutate(Input& data, std::mt19937_64& rng)
{
    const auto r = [&](std::uint64_t bound) {
        return static_cast<std::size_t>(rng() % (bound == 0 ? 1 : bound));
    };
    switch (r(6)) {
    case 0:  // flip a bit
        if (!data.empty()) data[r(data.size())] ^= std::uint8_t(1u << r(8));
        break;
    case 1:  // overwrite a byte
        if (!data.empty()) data[r(data.size())] = std::uint8_t(rng());
        break;
    case 2:  // insert a run of random bytes
        if (data.size() < kMaxLen) {
            const std::size_t n = 1 + r(8);
            const std::size_t at = r(data.size() + 1);
            Input run(n);
            for (auto& b : run) b = std::uint8_t(rng());
            data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), run.begin(), run.end());
        }
        break;
    case 3:  // erase a run
        if (!data.empty()) {
            const std::size_t at = r(data.size());
            const std::size_t n = 1 + r(std::min<std::size_t>(16, data.size() - at));
            data.erase(data.begin() + static_cast<std::ptrdiff_t>(at),
                       data.begin() + static_cast<std::ptrdiff_t>(at + n));
        }
        break;
    case 4: {  // overwrite with an "interesting" integer
        static constexpr std::uint64_t kInteresting[] = {0,    1,    0x7F, 0x80,  0xFF,
                                                         0x100, 0x7FFF, 0xFFFF, ~0ull};
        const std::uint64_t v = kInteresting[r(sizeof(kInteresting) / sizeof(std::uint64_t))];
        const std::size_t width = 1 + r(8);
        if (data.size() >= width) {
            const std::size_t at = r(data.size() - width + 1);
            std::memcpy(data.data() + at, &v, width);
        }
        break;
    }
    default:  // duplicate a chunk of the input onto its end (self-splice)
        if (!data.empty() && data.size() < kMaxLen) {
            const std::size_t at = r(data.size());
            const std::size_t n = 1 + r(std::min<std::size_t>(32, data.size() - at));
            data.insert(data.end(), data.begin() + static_cast<std::ptrdiff_t>(at),
                        data.begin() + static_cast<std::ptrdiff_t>(at + n));
        }
        break;
    }
    if (data.size() > kMaxLen) data.resize(kMaxLen);
}

}  // namespace

int main(int argc, char** argv)
{
    long long runs = -1;           // -1: unlimited (bounded by time, if given)
    long long max_total_time = 0;  // seconds; 0: no time bound
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
    std::vector<fs::path> corpus_files;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("-runs=", 0) == 0) {
            runs = std::atoll(arg.c_str() + 6);
        } else if (arg.rfind("-max_total_time=", 0) == 0) {
            max_total_time = std::atoll(arg.c_str() + 16);
        } else if (arg.rfind("-seed=", 0) == 0) {
            seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 6));
        } else if (!arg.empty() && arg[0] == '-') {
            // Unknown libFuzzer-style flags are accepted and ignored so that
            // one CI recipe drives both engines.
            std::fprintf(stderr, "driver: ignoring flag %s\n", arg.c_str());
        } else {
            collect(arg, corpus_files);
        }
    }

    // Phase 1: regression replay. Every corpus input runs exactly once; a
    // harness failure aborts the process, so reaching the end means clean.
    std::vector<Input> corpus;
    corpus.reserve(corpus_files.size());
    for (const auto& path : corpus_files) {
        Input data = read_file(path);
        std::fprintf(stderr, "driver: replay %s (%zu bytes)\n", path.c_str(), data.size());
        (void)LLVMFuzzerTestOneInput(data.data(), data.size());
        if (data.size() <= kMaxLen) corpus.push_back(std::move(data));
    }
    std::fprintf(stderr, "driver: replayed %zu corpus input(s)\n", corpus.size());

    // Phase 2: mutation fuzzing, when asked for via -runs / -max_total_time.
    if (runs < 0 && max_total_time == 0) return 0;  // replay-only (e.g. -runs=0)
    std::mt19937_64 rng(seed);
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
    long long executed = 0;
    while ((runs < 0 || executed < runs) &&
           (max_total_time == 0 || std::chrono::steady_clock::now() < deadline)) {
        Input data;
        if (!corpus.empty() && (rng() & 3u) != 0) {
            data = corpus[rng() % corpus.size()];
        } else {
            data.resize(1 + rng() % 64);
            for (auto& b : data) b = std::uint8_t(rng());
        }
        const unsigned stacked = 1 + unsigned(rng() % 4);
        for (unsigned m = 0; m < stacked; ++m) mutate(data, rng);
        (void)LLVMFuzzerTestOneInput(data.data(), data.size());
        ++executed;
        if ((executed & 0x3FF) == 0)
            std::fprintf(stderr, "driver: %lld execs\n", executed);
    }
    std::fprintf(stderr, "driver: done, %lld fuzz exec(s)\n", executed);
    return 0;
}
